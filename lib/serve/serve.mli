(** [loopt serve] — a long-running search daemon speaking JSONL.

    One JSON object per line on stdin (responses on stdout) and,
    optionally, on a Unix-domain socket with one thread per connection.
    Requests are serialized through a single server lock so every search
    shares the process-wide hash-cons intern tables, the canonicalization
    memo and the exact-objective memos ({!Itf_opt.Search}) — the second
    identical-shaped request is answered mostly from those tables, and an
    {e exactly} identical request is answered from a bounded LRU response
    cache without running the engine at all.

    {b Request} fields: ["nest"] (required; loop-nest source text),
    ["id"] (echoed verbatim), ["objective"] (["locality"] (default) or
    ["parallel"]), ["params"] (object of integers), ["procs"], ["steps"],
    ["beam"], ["exact_topk"] ([0] disables the tier-0 screen),
    ["tier0_only"], ["deadline_ms"], ["max_nodes"]. The deadline is
    measured from receipt, so queueing delay counts against it.

    {b Ops}: [{"op": "shutdown"}] stops the server; [{"op": "status"}]
    returns a live snapshot (uptime, request counters, latency quantiles
    from the [serve.request_us] histogram, per-phase time breakdown from
    the [engine.phase_us] histograms, cache and hash-cons intern-table
    health, and the recent slow requests); [{"op": "metrics"}] returns
    the whole registry in the Prometheus text exposition format under a
    ["metrics"] string field. Any other ["op"] is an error response.

    {b Response} fields (search): ["id"], ["status"] ([ok] — complete;
    [degraded] — budget expired, best-so-far answer plus a ["cut"]
    checkpoint name; [error] — malformed request, unparseable nest,
    unscoreable nest), ["score"], ["sequence"], ["canonical"],
    ["explored"], ["exact_evals"], ["cached"], ["time_ms"]. Errors are
    responses, never crashes. Only complete outcomes enter the response
    cache, and no wall-clock-derived value enters the cache key or the
    cached body, so a cached repeat replays the original search payload
    byte-identically with only ["cached"]/["time_ms"] fresh — and a
    cached answer is never a previously degraded one.

    {b Slow log & sampling} (DESIGN.md §12): every search request lands
    in a bounded ring of request records (id, fingerprint, status, wall
    time, per-phase breakdown, cache hit). A request is {e slow} when its
    wall time reaches [slow_ms] or its status is not [ok]; the newest
    slow records appear in the status snapshot. When [trace_out] is set,
    spans are captured per request and {e retained} by
    {!Itf_obs.Tracer.head_keep} on the request fingerprint
    ([sample_rate]) — deterministic, so reruns keep the same traces —
    with slow requests always retained (tail-based keep); retained
    requests also carry a self-time profile ({!Itf_obs.Profile}) in
    their ring record. *)

type t
(** Server state: response cache, metrics registry, tracer, request ring,
    lock. *)

val default_max_cache : int
(** Default response-cache capacity (entries). *)

val default_slow_ms : float
(** Default slow-request threshold (milliseconds). *)

val create :
  ?domains:int ->
  ?default_deadline_ms:float ->
  ?max_cache:int ->
  ?metrics_out:string ->
  ?trace_out:string ->
  ?slow_ms:float ->
  ?sample_rate:float ->
  ?recent:int ->
  unit ->
  t
(** [create ()] builds a server. [domains] is passed to every
    {!Itf_opt.Engine.search}; [default_deadline_ms] applies to requests
    that carry no ["deadline_ms"] of their own; [max_cache] (default
    {!default_max_cache}, [0] disables caching) bounds the LRU response
    cache; [metrics_out]/[trace_out] name files rewritten after every
    request with the {!Itf_obs.Metrics} dump and the retained span
    trace. [slow_ms] (default {!default_slow_ms}) sets the slow-log
    threshold; [sample_rate] (default [1.] — keep everything) the
    deterministic head-sampling rate for trace retention; [recent]
    (default 128) the request-ring capacity. *)

val metrics : t -> Itf_obs.Metrics.t
(** The server's metrics registry (shared with every search it runs). *)

val handle_line : t -> string -> Itf_obs.Json.t * bool
(** [handle_line t line] answers one JSONL request: the response value
    and whether the request asked the server to stop. Never raises —
    malformed input and engine failures become [status = "error"]
    responses. Exposed for tests; {!run} is the I/O loop around it. *)

val run : ?socket:string -> t -> unit
(** [run t] serves stdin/stdout until EOF or a shutdown request; with
    [socket], also listens on that Unix-domain socket path (removed and
    re-created), one thread per connection. Closes the listener and live
    connections on the way out and writes the final metrics/trace dumps. *)
