(* loopt serve — a long-running search service over JSONL.

   One request per line on stdin (responses on stdout) and, optionally, on
   a Unix-domain socket with one thread per connection. All parsing and
   searching is serialized through a single server lock: the hash-cons
   intern tables and the engine's coordinator are single-writer by design
   (DESIGN.md §10), and the whole point of the daemon is that consecutive
   requests share those process-wide tables — the objective memos, the
   canonicalization memo and the intern tables stay warm across requests,
   so a repeated search costs a table probe per candidate instead of a
   simulation. On top of that sits a bounded LRU response cache keyed on
   the request fingerprint (interned nest id + search configuration, id
   and budget excluded): an identical request is answered without running
   the engine at all. Only [Complete] outcomes are cached — a degraded
   answer is an artifact of one request's deadline, not a fact about the
   nest — so cache hits never launder a cut search into an "ok".

   Live introspection (DESIGN.md §12): every search request is recorded
   in a bounded ring of request records (status, wall time, per-phase
   breakdown from the engine stats, cache hit), its latency observed into
   a [serve.request_us] histogram; [{"op": "status"}] snapshots uptime,
   request counters, latency quantiles, the phase breakdown, cache and
   intern-table health, and the recent slow requests, and
   [{"op": "metrics"}] exposes the whole registry as Prometheus text.
   Span traces are captured per request and retained by a deterministic
   head-sampling decision on the fingerprint ([--sample-rate]) with a
   tail-based override: slow (>= [--slow-ms]), degraded and error
   requests keep their span tree even when head-sampled out. *)

module Json = Itf_obs.Json
module Metrics = Itf_obs.Metrics
module Tracer = Itf_obs.Tracer
module Profile = Itf_obs.Profile
module Engine = Itf_opt.Engine
module Stats = Itf_opt.Stats
module Sequence = Itf_core.Sequence

(* ------------------------------------------------------------------ *)
(* Bounded LRU response cache                                          *)
(* ------------------------------------------------------------------ *)

module Lru = struct
  (* Capacity is small (default {!default_max_cache}), so recency is a
     per-entry stamp and eviction an O(cap) scan — no intrusive list. *)
  type t = {
    tbl : (string, Json.t * int ref) Hashtbl.t;
    cap : int;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create cap =
    {
      tbl = Hashtbl.create 64;
      cap = max 0 cap;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let find t key =
    match Hashtbl.find_opt t.tbl key with
    | Some (v, stamp) ->
      t.tick <- t.tick + 1;
      stamp := t.tick;
      t.hits <- t.hits + 1;
      Some v
    | None ->
      t.misses <- t.misses + 1;
      None

  let add t key v =
    if t.cap > 0 then begin
      if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.cap then begin
        let victim =
          Hashtbl.fold
            (fun k (_, stamp) acc ->
              match acc with
              | Some (_, oldest) when oldest <= !stamp -> acc
              | _ -> Some (k, !stamp))
            t.tbl None
        in
        match victim with
        | Some (k, _) ->
          Hashtbl.remove t.tbl k;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key (v, ref t.tick)
    end

  let size t = Hashtbl.length t.tbl
end

(* ------------------------------------------------------------------ *)
(* Recent-request ring buffer                                          *)
(* ------------------------------------------------------------------ *)

(* One completed request, as remembered by the slow log. The phase
   breakdown comes from the engine's stats record, so it is present even
   when span tracing is off or the request was head-sampled out; the
   profile rows are only filled for requests whose span tree was
   retained. *)
type req_record = {
  rq_id : Json.t;
  rq_fingerprint : string;
  rq_status : string;
  rq_wall_us : float;
  rq_cached : bool;
  rq_phases_us : (string * float) list;
  rq_profile : Profile.row list;
}

module Ring = struct
  type t = {
    slots : req_record option array;
    mutable next : int;
    mutable total : int;
  }

  let create cap =
    { slots = Array.make (max 1 cap) None; next = 0; total = 0 }

  let push t x =
    t.slots.(t.next) <- Some x;
    t.next <- (t.next + 1) mod Array.length t.slots;
    t.total <- t.total + 1

  (* Newest first. *)
  let recent t =
    let n = Array.length t.slots in
    let out = ref [] in
    for k = 0 to n - 1 do
      match t.slots.((t.next + k) mod n) with
      | Some x -> out := x :: !out
      | None -> ()
    done;
    !out
end

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

let default_max_cache = 64
let default_slow_ms = 500.
let default_recent = 128
let slow_log_limit = 16

type t = {
  domains : int option;
  default_deadline_ms : float option;
  cache : Lru.t;
  metrics : Metrics.t;
  tracer : Tracer.t;  (** accumulates the {e retained} request span trees *)
  metrics_out : string option;
  trace_out : string option;
  slow_ms : float;
  sample_rate : float;
  started : float;
  recent : Ring.t;
  lock : Mutex.t;  (** serializes searches, interning and the cache *)
  clients : (Unix.file_descr list ref * Mutex.t);
  mutable stopping : bool;
}

let create ?domains ?default_deadline_ms ?(max_cache = default_max_cache)
    ?metrics_out ?trace_out ?(slow_ms = default_slow_ms) ?(sample_rate = 1.)
    ?(recent = default_recent) () =
  {
    domains;
    default_deadline_ms;
    cache = Lru.create max_cache;
    metrics = Metrics.create ();
    tracer = (if trace_out = None then Tracer.null else Tracer.create ());
    metrics_out;
    trace_out;
    slow_ms;
    sample_rate;
    started = Unix.gettimeofday ();
    recent = Ring.create recent;
    lock = Mutex.create ();
    clients = (ref [], Mutex.create ());
    stopping = false;
  }

let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  nest_src : string;
  objective : string;
  params : (string * int) list;
  procs : int;
  steps : int;
  beam : int;
  exact_topk : int;
  tier0_only : bool;
  deadline_ms : float option;
  max_nodes : int option;
}

let opt_field name conv json = Option.bind (Json.member name json) conv

let int_field name ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let bool_field name ~default json =
  match Json.member name json with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let params_field json =
  match Json.member "params" json with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: rest -> (
        match Json.to_int v with
        | Some x -> conv ((k, x) :: acc) rest
        | None -> Error (Printf.sprintf "parameter %S must be an integer" k))
    in
    conv [] kvs
  | Some _ -> Error "field \"params\" must be an object of integers"

let ( let* ) = Result.bind

let parse_request json =
  match json with
  | Json.Obj _ ->
    let* nest_src =
      match opt_field "nest" Json.to_str json with
      | Some s -> Ok s
      | None -> Error "missing required string field \"nest\""
    in
    let objective =
      Option.value ~default:"locality" (opt_field "objective" Json.to_str json)
    in
    let* () =
      if objective = "locality" || objective = "parallel" then Ok ()
      else
        Error
          (Printf.sprintf "unknown objective %S (use locality|parallel)"
             objective)
    in
    let* params = params_field json in
    let* procs = int_field "procs" ~default:8 json in
    let* steps = int_field "steps" ~default:2 json in
    let* beam = int_field "beam" ~default:6 json in
    let* exact_topk =
      int_field "exact_topk" ~default:Engine.default_exact_topk json
    in
    let* tier0_only = bool_field "tier0_only" ~default:false json in
    let* () =
      if tier0_only && exact_topk = 0 then
        Error "tier0_only conflicts with exact_topk = 0"
      else Ok ()
    in
    let deadline_ms = opt_field "deadline_ms" Json.to_float json in
    let max_nodes = opt_field "max_nodes" Json.to_int json in
    Ok
      {
        id = Option.value ~default:Json.Null (Json.member "id" json);
        nest_src;
        objective;
        params;
        procs;
        steps;
        beam;
        exact_topk;
        tier0_only;
        deadline_ms;
        max_nodes;
      }
  | _ -> Error "request must be a JSON object"

(* The response-cache key: everything that determines the answer, and
   {e only} that. The nest contributes its intern id, so textually
   different spellings of the same nest share an entry; the budget and
   request id are excluded (they affect how long we search, not what the
   full answer is — and degraded answers are never cached), and no
   wall-clock-derived value may ever enter the key or the cached body:
   a cache hit must replay the original search payload byte-identically,
   with only the per-response [cached]/[time_ms] envelope fresh. *)
let fingerprint req nest =
  let params =
    List.sort compare req.params
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat ","
  in
  Printf.sprintf "%d|%s|%s|%d|%d|%d|%b|%d"
    (Itf_ir.Intern.nest_id nest)
    req.objective params req.steps req.beam req.exact_topk req.tier0_only
    req.procs

(* ------------------------------------------------------------------ *)
(* Handling                                                            *)
(* ------------------------------------------------------------------ *)

let error_response ?(id = Json.Null) msg =
  Json.Obj [ ("id", id); ("status", Json.String "error"); ("error", Json.String msg) ]

let render_sequence seq =
  if seq = [] then "identity" else Format.asprintf "%a" Sequence.pp seq

let count_request t status =
  Metrics.incr
    (Metrics.counter t.metrics ~labels:[ ("status", status) ] "serve.requests")

let publish_cache_gauges t =
  let g name v = Metrics.set (Metrics.gauge t.metrics name) (float_of_int v) in
  g "serve.cache.size" (Lru.size t.cache);
  g "serve.cache.hits" t.cache.Lru.hits;
  g "serve.cache.misses" t.cache.Lru.misses;
  g "serve.cache.evictions" t.cache.Lru.evictions

let write_text_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Rewritten whole after every request so an external observer (the CI
   smoke test, an operator's tail loop) always sees a complete JSON
   document, not a moving append point. *)
let flush_observability t =
  (match t.metrics_out with
  | None -> ()
  | Some path ->
    write_text_file path (Json.to_string (Metrics.dump t.metrics) ^ "\n"));
  match t.trace_out with
  | None -> ()
  | Some path ->
    write_text_file path
      (String.concat "\n" (Tracer.jsonl_lines (Tracer.roots t.tracer)) ^ "\n")

let request_latency t =
  Metrics.histogram t.metrics ~buckets:Metrics.duration_buckets
    "serve.request_us"

let phase_names = [ "expand"; "legality"; "tier0"; "exact"; "merge" ]

let phases_of_stats (s : Stats.t) =
  [
    ("expand", s.Stats.expand_time_s *. 1e6);
    ("legality", s.Stats.legality_time_s *. 1e6);
    ("tier0", s.Stats.tier0_time_s *. 1e6);
    ("exact", s.Stats.exact_time_s *. 1e6);
    ("merge", s.Stats.merge_time_s *. 1e6);
  ]

let search_response t ~tracer req ~t_recv =
  match Itf_lang.Parser.parse req.nest_src with
  | exception Itf_lang.Parser.Error { line; message } ->
    Error (Printf.sprintf "nest:%d: %s" line message)
  | prog -> (
    let nest = prog.Itf_lang.Parser.nest in
    let key = fingerprint req nest in
    match Lru.find t.cache key with
    | Some cached -> Ok (`Cached (cached, key))
    | None ->
      let memo = true in
      let obj, tier0 =
        match req.objective with
        | "locality" ->
          ( Itf_opt.Search.cache_misses ~metrics:t.metrics ~memo
              ~params:req.params (),
            Itf_opt.Costmodel.Locality
              {
                config =
                  {
                    Itf_machine.Cache.size_bytes = 8192;
                    line_bytes = 64;
                    assoc = 2;
                  };
                elem_bytes = 8;
                params = req.params;
              } )
        | _ ->
          ( Itf_opt.Search.parallel_time ~metrics:t.metrics ~memo
              ~procs:req.procs ~params:req.params (),
            Itf_opt.Costmodel.Parallel
              { procs = req.procs; spawn_overhead = 2.0; params = req.params }
          )
      in
      let tier0 = if req.exact_topk = 0 then None else Some tier0 in
      (* The deadline is measured from receipt, so time spent queued
         behind other requests counts against it — a late search is cut
         shorter, not granted a fresh allowance. *)
      let deadline_ms =
        match req.deadline_ms with
        | Some _ as d -> d
        | None -> t.default_deadline_ms
      in
      let budget =
        match (deadline_ms, req.max_nodes) with
        | None, None -> None
        | deadline_ms, max_nodes ->
          let deadline_s =
            Option.map
              (fun ms ->
                Float.max 0. ((ms /. 1000.) -. (Unix.gettimeofday () -. t_recv)))
              deadline_ms
          in
          Some { Engine.deadline_s; max_nodes }
      in
      let outcome =
        Tracer.span tracer "serve.request"
          ~attrs:(fun () ->
            [
              ("id", Tracer.String (Json.to_string req.id));
              ("fingerprint", Tracer.String key);
            ])
          (fun () ->
            Engine.search ~beam:req.beam ~steps:req.steps ?domains:t.domains
              ~tracer ~metrics:t.metrics ?tier0
              ~exact_topk:(max 1 req.exact_topk) ~tier0_only:req.tier0_only
              ?budget nest obj)
      in
      (match outcome with
      | None -> Error "nest could not be scored"
      | Some o ->
        let status = Engine.completion_label o.Engine.completion in
        let body =
          [
            ("status", Json.String status);
            ("score", Json.Float o.Engine.score);
            ("sequence", Json.String (render_sequence o.Engine.sequence));
            ("canonical", Json.String (render_sequence o.Engine.canonical));
            ( "explored",
              Json.Int o.Engine.stats.Itf_opt.Stats.nodes_explored );
            ( "exact_evals",
              Json.Int o.Engine.stats.Itf_opt.Stats.objective_evaluations );
          ]
          @
          match o.Engine.completion with
          | Engine.Complete -> []
          | Engine.Degraded { cut } -> [ ("cut", Json.String cut) ]
        in
        let body = Json.Obj body in
        if o.Engine.completion = Engine.Complete then Lru.add t.cache key body;
        Ok (`Fresh (body, key, o.Engine.stats))))

(* ------------------------------------------------------------------ *)
(* Introspection ops                                                   *)
(* ------------------------------------------------------------------ *)

let record_json r =
  Json.Obj
    ([
       ("id", r.rq_id);
       ("fingerprint", Json.String r.rq_fingerprint);
       ("status", Json.String r.rq_status);
       ("wall_us", Json.Float r.rq_wall_us);
       ("cached", Json.Bool r.rq_cached);
       ( "phases_us",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.rq_phases_us)
       );
     ]
    @
    if r.rq_profile = [] then []
    else [ ("profile", Profile.to_json (Profile.top 8 r.rq_profile)) ])

let is_slow t r = r.rq_status <> "ok" || r.rq_wall_us >= t.slow_ms *. 1000.

(* The status snapshot. Reads the registry and the ring under the server
   lock (the caller holds it); every number is either an integer counter
   or derived from integer bucket counts, so two servers fed the same
   requests report the same snapshot modulo the wall-clock fields. *)
let status_snapshot t ~id =
  let now = Unix.gettimeofday () in
  let cnt s =
    Metrics.counter_value
      (Metrics.counter t.metrics ~labels:[ ("status", s) ] "serve.requests")
  in
  let ok = cnt "ok" and degraded = cnt "degraded" and errors = cnt "error" in
  let lat = request_latency t in
  let lat_count = Metrics.histogram_count lat in
  let q p = Option.value ~default:0. (Metrics.quantile lat p) in
  let phase_sum p =
    Metrics.histogram_sum
      (Metrics.histogram t.metrics
         ~labels:[ ("phase", p) ]
         ~buckets:Metrics.duration_buckets "engine.phase_us")
  in
  let search_h =
    Metrics.histogram t.metrics ~buckets:Metrics.duration_buckets
      "engine.total_time_ms"
  in
  let slow =
    List.filteri
      (fun k _ -> k < slow_log_limit)
      (List.filter (is_slow t) (Ring.recent t.recent))
  in
  let intern =
    List.map
      (fun s ->
        Json.Obj
          [
            ("table", Json.String s.Itf_mat.Hashcons.name);
            ("size", Json.Int s.Itf_mat.Hashcons.size);
            ("hits", Json.Int s.Itf_mat.Hashcons.hits);
            ("misses", Json.Int s.Itf_mat.Hashcons.misses);
            ("evictions", Json.Int s.Itf_mat.Hashcons.evictions);
          ])
      (Itf_mat.Hashcons.stats ())
  in
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "ok");
      ("uptime_s", Json.Float (now -. t.started));
      ( "requests",
        Json.Obj
          [
            ("ok", Json.Int ok);
            ("degraded", Json.Int degraded);
            ("error", Json.Int errors);
            ("total", Json.Int (ok + degraded + errors));
          ] );
      ( "latency_us",
        Json.Obj
          [
            ("count", Json.Int lat_count);
            ("sum", Json.Float (Metrics.histogram_sum lat));
            ( "mean",
              Json.Float
                (if lat_count = 0 then 0.
                 else Metrics.histogram_sum lat /. float_of_int lat_count) );
            ("p50", Json.Float (q 0.5));
            ("p90", Json.Float (q 0.9));
            ("p99", Json.Float (q 0.99));
          ] );
      ( "phases_us",
        Json.Obj
          (List.map (fun p -> (p, Json.Float (phase_sum p))) phase_names) );
      ( "search_us",
        Json.Obj
          [
            ("count", Json.Int (Metrics.histogram_count search_h));
            ( "total",
              Json.Float (Metrics.histogram_sum search_h *. 1e3)
              (* engine.total_time_ms is in ms *) );
          ] );
      ( "cache",
        Json.Obj
          [
            ("size", Json.Int (Lru.size t.cache));
            ("hits", Json.Int t.cache.Lru.hits);
            ("misses", Json.Int t.cache.Lru.misses);
            ("evictions", Json.Int t.cache.Lru.evictions);
          ] );
      ("intern", Json.List intern);
      ("slow_ms", Json.Float t.slow_ms);
      ("sample_rate", Json.Float t.sample_rate);
      ("slow", Json.List (List.map record_json slow));
    ]

let metrics_snapshot t ~id =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "ok");
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("metrics", Json.String (Metrics.dump_prometheus t.metrics));
    ]

(* [handle t json] answers one decoded request; returns the response and
   whether the server should stop. Never raises: any error — malformed
   request, parse failure, an exception escaping the engine — becomes a
   [status = "error"] response. *)
let handle t json =
  let t_recv = Unix.gettimeofday () in
  let req_id () = Option.value ~default:Json.Null (Json.member "id" json) in
  let op =
    match json with
    | Json.Obj _ -> (
      match Json.member "op" json with
      | Some (Json.String s) -> Some s
      | Some _ -> Some ""
      | None -> None)
    | _ -> None
  in
  match op with
  | Some "shutdown" ->
    t.stopping <- true;
    count_request t "ok";
    ( Json.Obj
        [
          ("id", req_id ());
          ("status", Json.String "ok");
          ("shutdown", Json.Bool true);
        ],
      true )
  | Some "status" ->
    let resp =
      Mutex.protect t.lock (fun () ->
          let r = status_snapshot t ~id:(req_id ()) in
          count_request t "ok";
          flush_observability t;
          r)
    in
    (resp, false)
  | Some "metrics" ->
    let resp =
      Mutex.protect t.lock (fun () ->
          let r = metrics_snapshot t ~id:(req_id ()) in
          count_request t "ok";
          flush_observability t;
          r)
    in
    (resp, false)
  | Some other ->
    let resp =
      error_response ~id:(req_id ())
        (Printf.sprintf "unknown op %S (use status|metrics|shutdown)" other)
    in
    Mutex.protect t.lock (fun () ->
        count_request t "error";
        flush_observability t);
    (resp, false)
  | None ->
    (* A search request. Span capture is per request: a fresh tracer when
       the tracing sink is configured, spliced into the retained forest
       only if the head-sampling draw keeps it or the tail condition
       (slow/degraded/error) fires. *)
    let rt = if t.trace_out = None then Tracer.null else Tracer.create () in
    let resp, fp, cached, phases, req_id_v =
      match parse_request json with
      | Error msg -> (error_response ?id:(Json.member "id" json) msg, "", false, [], req_id ())
      | Ok req -> (
        match
          Mutex.protect t.lock (fun () ->
              search_response t ~tracer:rt req ~t_recv)
        with
        | Error msg -> (error_response ~id:req.id msg, "", false, [], req.id)
        | Ok answer ->
          let body, fp, cached, phases =
            match answer with
            | `Cached (body, fp) -> (body, fp, true, [])
            | `Fresh (body, fp, stats) ->
              (body, fp, false, phases_of_stats stats)
          in
          let time_ms = (Unix.gettimeofday () -. t_recv) *. 1000. in
          ( Json.Obj
              (("id", req.id)
              :: (match body with Json.Obj kvs -> kvs | v -> [ ("result", v) ])
              @ [
                  ("cached", Json.Bool cached); ("time_ms", Json.Float time_ms);
                ]),
            fp,
            cached,
            phases,
            req.id )
        | exception e ->
          ( error_response ~id:req.id
              ("internal error: " ^ Printexc.to_string e),
            "",
            false,
            [],
            req.id ))
    in
    let status =
      match Json.member "status" resp with
      | Some (Json.String s) -> s
      | _ -> "error"
    in
    let wall_us = (Unix.gettimeofday () -. t_recv) *. 1e6 in
    let record =
      {
        rq_id = req_id_v;
        rq_fingerprint = fp;
        rq_status = status;
        rq_wall_us = wall_us;
        rq_cached = cached;
        rq_phases_us = phases;
        rq_profile = [];
      }
    in
    (* Head sampling is decided by the fingerprint alone, so reruns of the
       same request stream retain the same traces; the tail condition
       overrides it for anything worth a post-mortem. Capture already
       happened either way — sampling only chooses retention, so the kept
       span trees are unaffected by the rate. *)
    let retained =
      Tracer.enabled rt
      && (is_slow t record
         || Tracer.head_keep ~sample_rate:t.sample_rate ~fingerprint:fp)
    in
    let record =
      if retained then
        { record with rq_profile = Profile.of_spans (Tracer.roots rt) }
      else record
    in
    Mutex.protect t.lock (fun () ->
        count_request t status;
        Metrics.observe (request_latency t) wall_us;
        Ring.push t.recent record;
        if retained then Tracer.join t.tracer [ rt ];
        publish_cache_gauges t;
        flush_observability t);
    (resp, false)

let handle_line t line =
  match Json.of_string line with
  | Error msg -> (error_response ("malformed JSON: " ^ msg), false)
  | Ok json -> handle t json

(* ------------------------------------------------------------------ *)
(* I/O loops                                                           *)
(* ------------------------------------------------------------------ *)

let serve_channel t ic oc =
  let rec loop () =
    if not t.stopping then
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        if line = "" then loop ()
        else begin
          let resp, stop = handle_line t line in
          output_string oc (Json.to_string resp);
          output_char oc '\n';
          flush oc;
          if not stop then loop ()
        end
  in
  loop ()

let track_client t fd =
  let fds, lock = t.clients in
  Mutex.protect lock (fun () -> fds := fd :: !fds)

let untrack_client t fd =
  let fds, lock = t.clients in
  Mutex.protect lock (fun () -> fds := List.filter (fun f -> f != fd) !fds)

let close_clients t =
  let fds, lock = t.clients in
  let all = Mutex.protect lock (fun () -> !fds) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    all

let listen_unix path =
  (try Unix.unlink path with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let accept_loop t listen_fd =
  let rec loop () =
    match Unix.accept listen_fd with
    | exception _ -> ()  (* listener closed: shutdown *)
    | client, _ ->
      track_client t client;
      ignore
        (Thread.create
           (fun () ->
             let ic = Unix.in_channel_of_descr client in
             let oc = Unix.out_channel_of_descr client in
             (try serve_channel t ic oc with _ -> ());
             untrack_client t client;
             (try flush oc with _ -> ());
             try Unix.close client with _ -> ())
           ());
      if not t.stopping then loop ()
  in
  loop ()

(* [run t] serves requests from stdin (responses to stdout) and, when
   [socket] is given, from a Unix-domain socket with one thread per
   connection. Returns after stdin reaches EOF or a shutdown request
   arrives on any channel; the listener and live connections are closed
   on the way out. *)
let run ?socket t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let listener =
    Option.map
      (fun path ->
        let fd = listen_unix path in
        (path, fd, Thread.create (fun () -> accept_loop t fd) ()))
      socket
  in
  serve_channel t stdin stdout;
  t.stopping <- true;
  (match listener with
  | None -> ()
  | Some (path, fd, thread) ->
    (try Unix.close fd with _ -> ());
    close_clients t;
    (try Thread.join thread with _ -> ());
    try Unix.unlink path with _ -> ());
  Mutex.protect t.lock (fun () -> flush_observability t)
