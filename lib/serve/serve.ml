(* loopt serve — a long-running search service over JSONL.

   One request per line on stdin (responses on stdout) and, optionally, on
   a Unix-domain socket with one thread per connection. Requests no longer
   serialize through a global lock: a real scheduler (below) admits them
   into a bounded FIFO queue and a fixed-size pool of worker domains runs
   up to [workers] searches truly in parallel. What makes that safe is the
   layering underneath — the hash-cons intern tables and objective memos
   are sharded and safe for concurrent interning (Itf_mat.Hashcons), the
   engine carries all per-search mutable state in a search context
   (Engine.sctx), and the metrics registry is atomic — and what keeps it
   {e honest} is determinism: the engine's orders are structural and the
   memoized objectives return bit-identical floats no matter which worker
   warmed them, so the payload for a given request is byte-identical
   whether the server runs one worker or eight, cold or warm (DESIGN.md
   §13). The point of the daemon is unchanged: consecutive requests share
   the process-wide tables, so a repeated search costs a table probe per
   candidate instead of a simulation. On top sits a bounded LRU response
   cache keyed on the request fingerprint (interned nest id + search
   configuration, id and budget excluded): an identical request is
   answered without running the engine at all. Only [Complete] outcomes
   are cached — a degraded answer is an artifact of one request's
   deadline, not a fact about the nest — so cache hits never launder a
   cut search into an "ok".

   The scheduler's contract under load: when [queue_depth] searches are
   already waiting, a new search is {e shed} with [status = "overloaded"]
   instead of stalling the client; a request whose deadline expires while
   it waits in the queue returns [status = "degraded"] with
   [cut = "queue:deadline"] without running the engine at all (and is
   never cached); introspection ops are exempt from shedding — they are
   cheap, bounded, and exactly what an operator needs during overload.
   Per-request isolation: a malformed request is answered inline by the
   submitting thread and an engine exception becomes that request's
   error response — neither can take down a worker or block the queue.

   Live introspection (DESIGN.md §12): every search-shaped request is
   recorded in a bounded ring of request records (status, wall time,
   per-phase breakdown from the engine stats, cache hit), its latency
   observed into a [serve.request_us] histogram; the scheduler feeds
   [serve.queue.depth], [serve.queue.wait_ms], [serve.workers.busy] and
   the [serve.queue.shed] counter. [{"op": "status"}] snapshots uptime,
   request counters, latency quantiles, the queue and worker gauges, the
   phase breakdown, cache and intern-table health, and the recent slow
   requests, and [{"op": "metrics"}] exposes the whole registry as
   Prometheus text. Span traces are captured per request and retained by
   a deterministic head-sampling decision on the fingerprint
   ([--sample-rate]) with a tail-based override: slow (>= [--slow-ms]),
   degraded and error requests keep their span tree even when
   head-sampled out. *)

module Json = Itf_obs.Json
module Metrics = Itf_obs.Metrics
module Tracer = Itf_obs.Tracer
module Profile = Itf_obs.Profile
module Engine = Itf_opt.Engine
module Pool = Itf_opt.Pool
module Stats = Itf_opt.Stats
module Sequence = Itf_core.Sequence

(* ------------------------------------------------------------------ *)
(* Bounded LRU response cache                                          *)
(* ------------------------------------------------------------------ *)

module Lru = struct
  (* Capacity is small (default {!default_max_cache}), so recency is a
     per-entry stamp and eviction an O(cap) scan — no intrusive list.

     Explicitly thread-safe: one mutex per cache guards every operation —
     probe, insert, the eviction scan, the counter snapshot. Under the
     old design the global search lock covered it; now concurrent workers
     hit it directly, and the single mutex guarantees the tick/stamp
     bookkeeping never tears and the hit/miss/eviction counters never
     lose an update (the concurrency tests assert exact totals). *)
  type t = {
    tbl : (string, Json.t * int ref) Hashtbl.t;
    cap : int;
    mutex : Mutex.t;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create cap =
    {
      tbl = Hashtbl.create 64;
      cap = max 0 cap;
      mutex = Mutex.create ();
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let find t key =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some (v, stamp) ->
          t.tick <- t.tick + 1;
          stamp := t.tick;
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)

  let add t key v =
    if t.cap > 0 then
      Mutex.protect t.mutex (fun () ->
          if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.cap
          then begin
            let victim =
              Hashtbl.fold
                (fun k (_, stamp) acc ->
                  match acc with
                  | Some (_, oldest) when oldest <= !stamp -> acc
                  | _ -> Some (k, !stamp))
                t.tbl None
            in
            match victim with
            | Some (k, _) ->
              Hashtbl.remove t.tbl k;
              t.evictions <- t.evictions + 1
            | None -> ()
          end;
          t.tick <- t.tick + 1;
          Hashtbl.replace t.tbl key (v, ref t.tick))

  (* A consistent (hits, misses, evictions, size) snapshot — the four
     values are read under the same lock acquisition, so a snapshot never
     mixes counters from different moments. *)
  let counters t =
    Mutex.protect t.mutex (fun () ->
        (t.hits, t.misses, t.evictions, Hashtbl.length t.tbl))

end

(* ------------------------------------------------------------------ *)
(* Recent-request ring buffer                                          *)
(* ------------------------------------------------------------------ *)

(* One completed request, as remembered by the slow log. The phase
   breakdown comes from the engine's stats record, so it is present even
   when span tracing is off or the request was head-sampled out; the
   profile rows are only filled for requests whose span tree was
   retained. *)
type req_record = {
  rq_id : Json.t;
  rq_fingerprint : string;
  rq_status : string;
  rq_wall_us : float;
  rq_cached : bool;
  rq_phases_us : (string * float) list;
  rq_profile : Profile.row list;
}

module Ring = struct
  (* Thread-safe like {!Lru}: a single mutex serializes pushes (which
     mutate the cursor and the total) and snapshots, so concurrent
     workers never drop a record or read a half-advanced cursor. *)
  type t = {
    slots : req_record option array;
    mutex : Mutex.t;
    mutable next : int;
    mutable total : int;
  }

  let create cap =
    {
      slots = Array.make (max 1 cap) None;
      mutex = Mutex.create ();
      next = 0;
      total = 0;
    }

  let push t x =
    Mutex.protect t.mutex (fun () ->
        t.slots.(t.next) <- Some x;
        t.next <- (t.next + 1) mod Array.length t.slots;
        t.total <- t.total + 1)

  (* Newest first. *)
  let recent t =
    Mutex.protect t.mutex (fun () ->
        let n = Array.length t.slots in
        let out = ref [] in
        for k = 0 to n - 1 do
          match t.slots.((t.next + k) mod n) with
          | Some x -> out := x :: !out
          | None -> ()
        done;
        !out)
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  nest_src : string;
  objective : string;
  params : (string * int) list;
  procs : int;
  steps : int;
  beam : int;
  exact_topk : int;
  tier0_only : bool;
  deadline_ms : float option;
  max_nodes : int option;
}

let opt_field name conv json = Option.bind (Json.member name json) conv

let int_field name ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let bool_field name ~default json =
  match Json.member name json with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let params_field json =
  match Json.member "params" json with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: rest -> (
        match Json.to_int v with
        | Some x -> conv ((k, x) :: acc) rest
        | None -> Error (Printf.sprintf "parameter %S must be an integer" k))
    in
    conv [] kvs
  | Some _ -> Error "field \"params\" must be an object of integers"

let ( let* ) = Result.bind

let parse_request json =
  match json with
  | Json.Obj _ ->
    let* nest_src =
      match opt_field "nest" Json.to_str json with
      | Some s -> Ok s
      | None -> Error "missing required string field \"nest\""
    in
    let objective =
      Option.value ~default:"locality" (opt_field "objective" Json.to_str json)
    in
    let* () =
      if objective = "locality" || objective = "parallel" then Ok ()
      else
        Error
          (Printf.sprintf "unknown objective %S (use locality|parallel)"
             objective)
    in
    let* params = params_field json in
    let* procs = int_field "procs" ~default:8 json in
    let* steps = int_field "steps" ~default:2 json in
    let* beam = int_field "beam" ~default:6 json in
    let* exact_topk =
      int_field "exact_topk" ~default:Engine.default_exact_topk json
    in
    let* tier0_only = bool_field "tier0_only" ~default:false json in
    let* () =
      if tier0_only && exact_topk = 0 then
        Error "tier0_only conflicts with exact_topk = 0"
      else Ok ()
    in
    let deadline_ms = opt_field "deadline_ms" Json.to_float json in
    let max_nodes = opt_field "max_nodes" Json.to_int json in
    Ok
      {
        id = Option.value ~default:Json.Null (Json.member "id" json);
        nest_src;
        objective;
        params;
        procs;
        steps;
        beam;
        exact_topk;
        tier0_only;
        deadline_ms;
        max_nodes;
      }
  | _ -> Error "request must be a JSON object"

(* The response-cache key: everything that determines the answer, and
   {e only} that. The nest contributes its intern id, so textually
   different spellings of the same nest share an entry; the budget and
   request id are excluded (they affect how long we search, not what the
   full answer is — and degraded answers are never cached), and no
   wall-clock-derived value may ever enter the key or the cached body:
   a cache hit must replay the original search payload byte-identically,
   with only the per-response [cached]/[time_ms] envelope fresh. *)
let fingerprint req nest =
  let params =
    List.sort compare req.params
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat ","
  in
  Printf.sprintf "%d|%s|%s|%d|%d|%d|%b|%d"
    (Itf_ir.Intern.nest_id nest)
    req.objective params req.steps req.beam req.exact_topk req.tier0_only
    req.procs

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

let default_max_cache = 64
let default_slow_ms = 500.
let default_recent = 128
let default_workers = 1
let default_queue_depth = 64
let slow_log_limit = 16

(* One admitted unit of work, waiting in the scheduler queue. [reply] is
   called exactly once with the finished response — from a worker domain
   for queued jobs, from the submitting thread for inline answers
   (malformed requests, shed requests, shutdown). *)
type job =
  | Search of {
      req : request;
      recv : float;  (** receipt wall clock: deadlines count queue time *)
      reply : Json.t -> unit;
    }
  | Op of { op : string; op_id : Json.t; recv : float; reply : Json.t -> unit }

type t = {
  domains : int option;
  default_deadline_ms : float option;
  cache : Lru.t;
  metrics : Metrics.t;
  tracer : Tracer.t;  (** accumulates the {e retained} request span trees *)
  metrics_out : string option;
  trace_out : string option;
  slow_ms : float;
  sample_rate : float;
  started : float;
  recent : Ring.t;
  obs_lock : Mutex.t;
      (** guards the observability sinks only: the retained-trace forest
          and the metrics/trace output files. Searches do NOT serialize
          through it. *)
  clients : (Unix.file_descr list ref * Mutex.t);
  (* Scheduler state: a bounded FIFO of admitted jobs, executed by up to
     [workers] concurrent pump loops on the shared domain pool. [sched]
     guards the queue and both counts; [sched_idle] is broadcast when the
     scheduler goes fully idle (shutdown drains on it). *)
  workers : int;
  queue_depth : int;
  pool : Pool.t;
  sched : Mutex.t;
  sched_idle : Condition.t;
  jobs : job Queue.t;
  mutable queued : int;  (** jobs waiting (excludes running) *)
  mutable running : int;  (** active pump loops, <= workers *)
  mutable stopping : bool;
}

let create ?domains ?default_deadline_ms ?(max_cache = default_max_cache)
    ?metrics_out ?trace_out ?(slow_ms = default_slow_ms) ?(sample_rate = 1.)
    ?(recent = default_recent) ?(workers = default_workers)
    ?(queue_depth = default_queue_depth) () =
  let workers = max 1 workers in
  let metrics = Metrics.create () in
  Metrics.set (Metrics.gauge metrics "serve.workers") (float_of_int workers);
  {
    domains;
    default_deadline_ms;
    cache = Lru.create max_cache;
    metrics;
    tracer = (if trace_out = None then Tracer.null else Tracer.create ());
    metrics_out;
    trace_out;
    slow_ms;
    sample_rate;
    started = Unix.gettimeofday ();
    recent = Ring.create recent;
    obs_lock = Mutex.create ();
    clients = (ref [], Mutex.create ());
    workers;
    queue_depth = max 0 queue_depth;
    (* The process-wide pool (grown, never shrunk) supplies the worker
       domains; the scheduler bounds {e this server's} concurrency to
       [workers] itself, so sharing the pool with other servers or with
       the engine's candidate fan-out cannot over-admit. *)
    pool = Pool.shared ~workers ();
    sched = Mutex.create ();
    sched_idle = Condition.create ();
    jobs = Queue.create ();
    queued = 0;
    running = 0;
    stopping = false;
  }

let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

let error_response ?(id = Json.Null) msg =
  Json.Obj
    [ ("id", id); ("status", Json.String "error"); ("error", Json.String msg) ]

let render_sequence seq =
  if seq = [] then "identity" else Format.asprintf "%a" Sequence.pp seq

let count_request t status =
  Metrics.incr
    (Metrics.counter t.metrics ~labels:[ ("status", status) ] "serve.requests")

let shed_counter t = Metrics.counter t.metrics "serve.queue.shed"
let busy_gauge t = Metrics.gauge t.metrics "serve.workers.busy"

let queue_wait t =
  Metrics.histogram t.metrics ~buckets:Metrics.duration_buckets
    "serve.queue.wait_ms"

let publish_cache_gauges t =
  let hits, misses, evictions, size = Lru.counters t.cache in
  let g name v = Metrics.set (Metrics.gauge t.metrics name) (float_of_int v) in
  g "serve.cache.size" size;
  g "serve.cache.hits" hits;
  g "serve.cache.misses" misses;
  g "serve.cache.evictions" evictions

(* Caller must hold [t.sched]. *)
let publish_queue_gauge t =
  Metrics.set (Metrics.gauge t.metrics "serve.queue.depth")
    (float_of_int t.queued)

let write_text_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Rewritten whole after every request so an external observer (the CI
   smoke test, an operator's tail loop) always sees a complete JSON
   document, not a moving append point. Callers hold [t.obs_lock] so two
   workers never interleave partial writes of the same file. *)
let flush_observability t =
  (match t.metrics_out with
  | None -> ()
  | Some path ->
    write_text_file path (Json.to_string (Metrics.dump t.metrics) ^ "\n"));
  match t.trace_out with
  | None -> ()
  | Some path ->
    write_text_file path
      (String.concat "\n" (Tracer.jsonl_lines (Tracer.roots t.tracer)) ^ "\n")

let request_latency t =
  Metrics.histogram t.metrics ~buckets:Metrics.duration_buckets
    "serve.request_us"

let phase_names = [ "expand"; "legality"; "tier0"; "exact"; "merge" ]

let phases_of_stats (s : Stats.t) =
  [
    ("expand", s.Stats.expand_time_s *. 1e6);
    ("legality", s.Stats.legality_time_s *. 1e6);
    ("tier0", s.Stats.tier0_time_s *. 1e6);
    ("exact", s.Stats.exact_time_s *. 1e6);
    ("merge", s.Stats.merge_time_s *. 1e6);
  ]

(* ------------------------------------------------------------------ *)
(* Search execution                                                    *)
(* ------------------------------------------------------------------ *)

let search_response t ~tracer req ~t_recv =
  match Itf_lang.Parser.parse req.nest_src with
  | exception Itf_lang.Parser.Error { line; message } ->
    Error (Printf.sprintf "nest:%d: %s" line message)
  | prog -> (
    let nest = prog.Itf_lang.Parser.nest in
    let key = fingerprint req nest in
    match Lru.find t.cache key with
    | Some cached -> Ok (`Cached (cached, key))
    | None ->
      let memo = true in
      let obj, tier0 =
        match req.objective with
        | "locality" ->
          ( Itf_opt.Search.cache_misses ~metrics:t.metrics ~memo
              ~params:req.params (),
            Itf_opt.Costmodel.Locality
              {
                config =
                  {
                    Itf_machine.Cache.size_bytes = 8192;
                    line_bytes = 64;
                    assoc = 2;
                  };
                elem_bytes = 8;
                params = req.params;
              } )
        | _ ->
          ( Itf_opt.Search.parallel_time ~metrics:t.metrics ~memo
              ~procs:req.procs ~params:req.params (),
            Itf_opt.Costmodel.Parallel
              { procs = req.procs; spawn_overhead = 2.0; params = req.params }
          )
      in
      let tier0 = if req.exact_topk = 0 then None else Some tier0 in
      (* The deadline is measured from receipt, so time spent queued
         behind other requests counts against it — a late search is cut
         shorter, not granted a fresh allowance. *)
      let deadline_ms =
        match req.deadline_ms with
        | Some _ as d -> d
        | None -> t.default_deadline_ms
      in
      let budget =
        match (deadline_ms, req.max_nodes) with
        | None, None -> None
        | deadline_ms, max_nodes ->
          let deadline_s =
            Option.map
              (fun ms ->
                Float.max 0. ((ms /. 1000.) -. (Unix.gettimeofday () -. t_recv)))
              deadline_ms
          in
          Some { Engine.deadline_s; max_nodes }
      in
      let outcome =
        Tracer.span tracer "serve.request"
          ~attrs:(fun () ->
            [
              ("id", Tracer.String (Json.to_string req.id));
              ("fingerprint", Tracer.String key);
            ])
          (fun () ->
            Engine.search ~beam:req.beam ~steps:req.steps ?domains:t.domains
              ~tracer ~metrics:t.metrics ?tier0
              ~exact_topk:(max 1 req.exact_topk) ~tier0_only:req.tier0_only
              ?budget nest obj)
      in
      (match outcome with
      | None -> Error "nest could not be scored"
      | Some o ->
        let status = Engine.completion_label o.Engine.completion in
        let body =
          [
            ("status", Json.String status);
            ("score", Json.Float o.Engine.score);
            ("sequence", Json.String (render_sequence o.Engine.sequence));
            ("canonical", Json.String (render_sequence o.Engine.canonical));
            ( "explored",
              Json.Int o.Engine.stats.Itf_opt.Stats.nodes_explored );
            ( "exact_evals",
              Json.Int o.Engine.stats.Itf_opt.Stats.objective_evaluations );
          ]
          @
          match o.Engine.completion with
          | Engine.Complete -> []
          | Engine.Degraded { cut } -> [ ("cut", Json.String cut) ]
        in
        let body = Json.Obj body in
        (* Two workers finishing the same (uncached) request race the
           insert, but determinism makes the race write-write-identical:
           both computed the same body, either store wins. *)
        if o.Engine.completion = Engine.Complete then Lru.add t.cache key body;
        Ok (`Fresh (body, key, o.Engine.stats))))

(* ------------------------------------------------------------------ *)
(* Introspection ops                                                   *)
(* ------------------------------------------------------------------ *)

let record_json r =
  Json.Obj
    ([
       ("id", r.rq_id);
       ("fingerprint", Json.String r.rq_fingerprint);
       ("status", Json.String r.rq_status);
       ("wall_us", Json.Float r.rq_wall_us);
       ("cached", Json.Bool r.rq_cached);
       ( "phases_us",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.rq_phases_us)
       );
     ]
    @
    if r.rq_profile = [] then []
    else [ ("profile", Profile.to_json (Profile.top 8 r.rq_profile)) ])

let is_slow t r = r.rq_status <> "ok" || r.rq_wall_us >= t.slow_ms *. 1000.

(* The status snapshot. Every structure it reads is self-synchronized
   (atomic instruments, the ring's and cache's own mutexes, the scheduler
   lock for the queue counts); every number is either an integer counter
   or derived from integer bucket counts, so two servers fed the same
   requests report the same snapshot modulo the wall-clock fields and the
   instantaneous queue/worker levels. *)
let status_snapshot t ~id =
  let now = Unix.gettimeofday () in
  let cnt s =
    Metrics.counter_value
      (Metrics.counter t.metrics ~labels:[ ("status", s) ] "serve.requests")
  in
  let ok = cnt "ok" and degraded = cnt "degraded" and errors = cnt "error" in
  let overloaded = cnt "overloaded" in
  let lat = request_latency t in
  let lat_count = Metrics.histogram_count lat in
  let q p = Option.value ~default:0. (Metrics.quantile lat p) in
  let wait = queue_wait t in
  let wq p = Option.value ~default:0. (Metrics.quantile wait p) in
  let phase_sum p =
    Metrics.histogram_sum
      (Metrics.histogram t.metrics
         ~labels:[ ("phase", p) ]
         ~buckets:Metrics.duration_buckets "engine.phase_us")
  in
  let search_h =
    Metrics.histogram t.metrics ~buckets:Metrics.duration_buckets
      "engine.total_time_ms"
  in
  let slow =
    List.filteri
      (fun k _ -> k < slow_log_limit)
      (List.filter (is_slow t) (Ring.recent t.recent))
  in
  let intern =
    List.map
      (fun s ->
        Json.Obj
          [
            ("table", Json.String s.Itf_mat.Hashcons.name);
            ("size", Json.Int s.Itf_mat.Hashcons.size);
            ("hits", Json.Int s.Itf_mat.Hashcons.hits);
            ("misses", Json.Int s.Itf_mat.Hashcons.misses);
            ("evictions", Json.Int s.Itf_mat.Hashcons.evictions);
          ])
      (Itf_mat.Hashcons.stats ())
  in
  let queued = Mutex.protect t.sched (fun () -> t.queued) in
  let cache_hits, cache_misses, cache_evictions, cache_size =
    Lru.counters t.cache
  in
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "ok");
      ("uptime_s", Json.Float (now -. t.started));
      ( "requests",
        Json.Obj
          [
            ("ok", Json.Int ok);
            ("degraded", Json.Int degraded);
            ("error", Json.Int errors);
            ("overloaded", Json.Int overloaded);
            ("total", Json.Int (ok + degraded + errors + overloaded));
          ] );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int queued);
            ("capacity", Json.Int t.queue_depth);
            ( "shed",
              Json.Int (Metrics.counter_value (shed_counter t)) );
            ("wait_ms_p50", Json.Float (wq 0.5));
            ("wait_ms_p99", Json.Float (wq 0.99));
          ] );
      ( "workers",
        Json.Obj
          [
            ("configured", Json.Int t.workers);
            ( "busy",
              Json.Int (int_of_float (Metrics.gauge_value (busy_gauge t))) );
          ] );
      ( "latency_us",
        Json.Obj
          [
            ("count", Json.Int lat_count);
            ("sum", Json.Float (Metrics.histogram_sum lat));
            ( "mean",
              Json.Float
                (if lat_count = 0 then 0.
                 else Metrics.histogram_sum lat /. float_of_int lat_count) );
            ("p50", Json.Float (q 0.5));
            ("p90", Json.Float (q 0.9));
            ("p99", Json.Float (q 0.99));
          ] );
      ( "phases_us",
        Json.Obj
          (List.map (fun p -> (p, Json.Float (phase_sum p))) phase_names) );
      ( "search_us",
        Json.Obj
          [
            ("count", Json.Int (Metrics.histogram_count search_h));
            ( "total",
              Json.Float (Metrics.histogram_sum search_h *. 1e3)
              (* engine.total_time_ms is in ms *) );
          ] );
      ( "cache",
        Json.Obj
          [
            ("size", Json.Int cache_size);
            ("hits", Json.Int cache_hits);
            ("misses", Json.Int cache_misses);
            ("evictions", Json.Int cache_evictions);
          ] );
      ("intern", Json.List intern);
      ("slow_ms", Json.Float t.slow_ms);
      ("sample_rate", Json.Float t.sample_rate);
      ("slow", Json.List (List.map record_json slow));
    ]

let metrics_snapshot t ~id =
  Json.Obj
    [
      ("id", id);
      ("status", Json.String "ok");
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("metrics", Json.String (Metrics.dump_prometheus t.metrics));
    ]

(* ------------------------------------------------------------------ *)
(* Request recording                                                   *)
(* ------------------------------------------------------------------ *)

(* Count, time, ring-record and (when a tracer captured spans) retain one
   finished search-shaped request. Runs on whichever thread produced the
   response — a worker domain for executed searches, the submitting
   thread for inline answers (parse errors, shed requests). Everything
   here is either atomic or internally locked; only the trace forest and
   the output files need [obs_lock]. *)
let record_request t ?(fp = "") ?(cached = false) ?(phases = [])
    ?(rt = Tracer.null) ~req_id ~t_recv resp =
  let status =
    match Json.member "status" resp with
    | Some (Json.String s) -> s
    | _ -> "error"
  in
  let wall_us = (Unix.gettimeofday () -. t_recv) *. 1e6 in
  let record =
    {
      rq_id = req_id;
      rq_fingerprint = fp;
      rq_status = status;
      rq_wall_us = wall_us;
      rq_cached = cached;
      rq_phases_us = phases;
      rq_profile = [];
    }
  in
  (* Head sampling is decided by the fingerprint alone, so reruns of the
     same request stream retain the same traces; the tail condition
     overrides it for anything worth a post-mortem. Capture already
     happened either way — sampling only chooses retention, so the kept
     span trees are unaffected by the rate. *)
  let retained =
    Tracer.enabled rt
    && (is_slow t record
       || Tracer.head_keep ~sample_rate:t.sample_rate ~fingerprint:fp)
  in
  let record =
    if retained then
      { record with rq_profile = Profile.of_spans (Tracer.roots rt) }
    else record
  in
  count_request t status;
  Metrics.observe (request_latency t) wall_us;
  Ring.push t.recent record;
  publish_cache_gauges t;
  Mutex.protect t.obs_lock (fun () ->
      if retained then Tracer.join t.tracer [ rt ];
      flush_observability t)

(* Execute one admitted search on a worker. The queue-aware deadline
   check comes first: a request whose whole allowance was eaten while it
   waited returns [Degraded {cut = "queue:deadline"}] without touching
   the engine — and is never cached, exactly like any other degraded
   answer. *)
let exec_search t req ~t_recv =
  let effective_deadline_ms =
    match req.deadline_ms with
    | Some _ as d -> d
    | None -> t.default_deadline_ms
  in
  let queue_expired =
    match effective_deadline_ms with
    | Some ms -> (Unix.gettimeofday () -. t_recv) *. 1000. >= ms
    | None -> false
  in
  if queue_expired then begin
    let time_ms = (Unix.gettimeofday () -. t_recv) *. 1000. in
    let resp =
      Json.Obj
        [
          ("id", req.id);
          ("status", Json.String "degraded");
          ("cut", Json.String "queue:deadline");
          ("cached", Json.Bool false);
          ("time_ms", Json.Float time_ms);
        ]
    in
    record_request t ~req_id:req.id ~t_recv resp;
    resp
  end
  else begin
    (* Span capture is per request: a fresh tracer when the tracing sink
       is configured, spliced into the retained forest only if the
       head-sampling draw keeps it or the tail condition fires. *)
    let rt = if t.trace_out = None then Tracer.null else Tracer.create () in
    let resp, fp, cached, phases =
      match search_response t ~tracer:rt req ~t_recv with
      | Error msg -> (error_response ~id:req.id msg, "", false, [])
      | Ok answer ->
        let body, fp, cached, phases =
          match answer with
          | `Cached (body, fp) -> (body, fp, true, [])
          | `Fresh (body, fp, stats) -> (body, fp, false, phases_of_stats stats)
        in
        let time_ms = (Unix.gettimeofday () -. t_recv) *. 1000. in
        ( Json.Obj
            (("id", req.id)
            :: (match body with Json.Obj kvs -> kvs | v -> [ ("result", v) ])
            @ [ ("cached", Json.Bool cached); ("time_ms", Json.Float time_ms) ]),
          fp,
          cached,
          phases )
      | exception e ->
        ( error_response ~id:req.id ("internal error: " ^ Printexc.to_string e),
          "",
          false,
          [] )
    in
    record_request t ~fp ~cached ~phases ~rt ~req_id:req.id ~t_recv resp;
    resp
  end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let run_job t job =
  let observe_wait recv =
    Metrics.observe (queue_wait t) ((Unix.gettimeofday () -. recv) *. 1000.)
  in
  match job with
  | Op { op; op_id; recv; reply } ->
    observe_wait recv;
    let resp =
      match op with
      | "status" -> status_snapshot t ~id:op_id
      | _ -> metrics_snapshot t ~id:op_id
    in
    count_request t "ok";
    Mutex.protect t.obs_lock (fun () -> flush_observability t);
    reply resp
  | Search { req; recv; reply } ->
    observe_wait recv;
    reply (exec_search t req ~t_recv:recv)

(* One pump loop: drain the server's queue until it is empty, then
   release the worker slot. Short-lived by design — pump jobs occupy a
   shared-pool domain only while this server actually has work, so many
   servers (and the engine's own candain fan-out) can share one pool
   without parking threads on each other. *)
let rec pump t =
  let job =
    Mutex.protect t.sched (fun () ->
        match Queue.take_opt t.jobs with
        | None ->
          t.running <- t.running - 1;
          if t.running = 0 && t.queued = 0 then
            Condition.broadcast t.sched_idle;
          None
        | Some j ->
          t.queued <- t.queued - 1;
          publish_queue_gauge t;
          Some j)
  in
  match job with
  | None -> ()
  | Some job ->
    Metrics.gauge_add (busy_gauge t) 1.;
    (* Per-request isolation: [run_job] already converts engine failures
       into error responses; this catch-all is the last line keeping an
       unexpected exception from killing a shared pool worker. *)
    (try run_job t job with _ -> ());
    Metrics.gauge_add (busy_gauge t) (-1.);
    pump t

(* Admission. Introspection ops are always admitted — they are cheap,
   bounded and exactly what an operator needs during overload; searches
   are shed once [queue_depth] jobs are already waiting. Admitting a job
   tops the pump loops up to [workers], which bounds this server's
   concurrency regardless of how large the shared pool has grown. *)
let enqueue t job =
  Mutex.protect t.sched (fun () ->
      let sheddable = match job with Search _ -> true | Op _ -> false in
      if sheddable && t.queued >= t.queue_depth then `Shed
      else begin
        Queue.push job t.jobs;
        t.queued <- t.queued + 1;
        publish_queue_gauge t;
        if t.running < t.workers then begin
          t.running <- t.running + 1;
          Pool.submit t.pool (fun () -> pump t)
        end;
        `Queued
      end)

(* Block until the scheduler is fully idle: no queued jobs, no running
   pump. Invariant: whenever the queue is non-empty at least one pump is
   running (enqueue tops the slots up under the same lock), so this
   always terminates once clients stop submitting. *)
let drain t =
  Mutex.protect t.sched (fun () ->
      while t.queued > 0 || t.running > 0 do
        Condition.wait t.sched_idle t.sched
      done)

(* ------------------------------------------------------------------ *)
(* Handling                                                            *)
(* ------------------------------------------------------------------ *)

(* [submit t json k] classifies one decoded request and calls [k] exactly
   once with (response, stop). Inline paths — unknown op, malformed
   search, shed search, shutdown — reply on the calling thread before
   returning; admitted jobs reply later from a worker domain. Never
   raises: any error becomes a [status = "error"] response. *)
let submit t json k =
  let t_recv = Unix.gettimeofday () in
  let req_id () = Option.value ~default:Json.Null (Json.member "id" json) in
  let op =
    match json with
    | Json.Obj _ -> (
      match Json.member "op" json with
      | Some (Json.String s) -> Some s
      | Some _ -> Some ""
      | None -> None)
    | _ -> None
  in
  match op with
  | Some "shutdown" ->
    (* Stop, but answer everything already admitted first: the drain
       waits for the queue and every running worker, so the shutdown
       response is always the last one out. *)
    t.stopping <- true;
    drain t;
    count_request t "ok";
    k
      ( Json.Obj
          [
            ("id", req_id ());
            ("status", Json.String "ok");
            ("shutdown", Json.Bool true);
          ],
        true )
  | Some (("status" | "metrics") as opname) ->
    let job =
      Op
        {
          op = opname;
          op_id = req_id ();
          recv = t_recv;
          reply = (fun resp -> k (resp, false));
        }
    in
    (match enqueue t job with
    | `Queued -> ()
    | `Shed -> assert false (* ops are never shed *))
  | Some other ->
    let resp =
      error_response ~id:(req_id ())
        (Printf.sprintf "unknown op %S (use status|metrics|shutdown)" other)
    in
    count_request t "error";
    Mutex.protect t.obs_lock (fun () -> flush_observability t);
    k (resp, false)
  | None -> (
    match parse_request json with
    | Error msg ->
      (* Malformed searches never occupy a worker: answered inline, but
         still counted and ring-recorded like any other request. *)
      let resp = error_response ?id:(Json.member "id" json) msg in
      record_request t ~req_id:(req_id ()) ~t_recv resp;
      k (resp, false)
    | Ok req -> (
      let job =
        Search { req; recv = t_recv; reply = (fun resp -> k (resp, false)) }
      in
      match enqueue t job with
      | `Queued -> ()
      | `Shed ->
        Metrics.incr (shed_counter t);
        let resp =
          Json.Obj
            [
              ("id", req.id);
              ("status", Json.String "overloaded");
              ( "error",
                Json.String
                  (Printf.sprintf
                     "queue full (%d waiting, capacity %d): request shed"
                     t.queue_depth t.queue_depth) );
            ]
        in
        record_request t ~req_id:req.id ~t_recv resp;
        k (resp, false)))

(* Synchronous wrapper: submit and block until the reply lands. Used by
   [handle_line] (tests, simple embedding); the I/O loops below use
   [submit] directly so one slow search never stalls the reader. *)
let handle t json =
  let m = Mutex.create () in
  let c = Condition.create () in
  let cell = ref None in
  submit t json (fun reply ->
      Mutex.protect m (fun () ->
          cell := Some reply;
          Condition.signal c));
  Mutex.lock m;
  let rec wait () =
    match !cell with
    | Some r -> r
    | None ->
      Condition.wait c m;
      wait ()
  in
  let r = wait () in
  Mutex.unlock m;
  r

let handle_line t line =
  match Json.of_string line with
  | Error msg -> (error_response ("malformed JSON: " ^ msg), false)
  | Ok json -> handle t json

(* ------------------------------------------------------------------ *)
(* I/O loops                                                           *)
(* ------------------------------------------------------------------ *)

(* Pipelined channel loop: the reader admits requests as fast as they
   arrive (the admission queue, not the reader, applies backpressure);
   workers complete them and responses are written in completion order
   under a per-channel output lock — out-of-order under load, so clients
   correlate by ["id"]. With [workers = 1] the scheduler is a FIFO and
   responses come back in request order, exactly the old serialized
   behavior. On EOF or shutdown the loop waits for every response it owes
   before returning. *)
let serve_channel t ic oc =
  let out = Mutex.create () in
  let pm = Mutex.create () in
  let pc = Condition.create () in
  let pending = ref 0 in
  let stopped = ref false in
  let write resp =
    Mutex.protect out (fun () ->
        output_string oc (Json.to_string resp);
        output_char oc '\n';
        flush oc)
  in
  let finish stop =
    Mutex.protect pm (fun () ->
        decr pending;
        if stop then stopped := true;
        Condition.signal pc)
  in
  let rec loop () =
    if not (t.stopping || !stopped) then
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        if line <> "" then begin
          Mutex.protect pm (fun () -> incr pending);
          match Json.of_string line with
          | Error msg ->
            write (error_response ("malformed JSON: " ^ msg));
            finish false
          | Ok json ->
            submit t json (fun (resp, stop) ->
                write resp;
                finish stop)
        end;
        loop ()
  in
  loop ();
  Mutex.protect pm (fun () ->
      while !pending > 0 do
        Condition.wait pc pm
      done)

let track_client t fd =
  let fds, lock = t.clients in
  Mutex.protect lock (fun () -> fds := fd :: !fds)

let untrack_client t fd =
  let fds, lock = t.clients in
  Mutex.protect lock (fun () -> fds := List.filter (fun f -> f != fd) !fds)

let close_clients t =
  let fds, lock = t.clients in
  let all = Mutex.protect lock (fun () -> !fds) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    all

let listen_unix path =
  (try Unix.unlink path with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let accept_loop t listen_fd =
  let rec loop () =
    match Unix.accept listen_fd with
    | exception _ -> ()  (* listener closed: shutdown *)
    | client, _ ->
      track_client t client;
      ignore
        (Thread.create
           (fun () ->
             let ic = Unix.in_channel_of_descr client in
             let oc = Unix.out_channel_of_descr client in
             (try serve_channel t ic oc with _ -> ());
             untrack_client t client;
             (try flush oc with _ -> ());
             try Unix.close client with _ -> ())
           ());
      if not t.stopping then loop ()
  in
  loop ()

(* [run t] serves requests from stdin (responses to stdout) and, when
   [socket] is given, from a Unix-domain socket with one thread per
   connection. Returns after stdin reaches EOF or a shutdown request
   arrives on any channel; in-flight requests are drained, then the
   listener and live connections are closed on the way out. *)
let run ?socket t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let listener =
    Option.map
      (fun path ->
        let fd = listen_unix path in
        (path, fd, Thread.create (fun () -> accept_loop t fd) ()))
      socket
  in
  serve_channel t stdin stdout;
  t.stopping <- true;
  drain t;
  (match listener with
  | None -> ()
  | Some (path, fd, thread) ->
    (try Unix.close fd with _ -> ());
    close_clients t;
    (try Thread.join thread with _ -> ());
    try Unix.unlink path with _ -> ());
  Mutex.protect t.obs_lock (fun () -> flush_observability t)
