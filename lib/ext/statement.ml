open Itf_ir
module Analysis = Itf_dep.Analysis

(* ------------------------------------------------------------------ *)
(* Tarjan's strongly connected components.                             *)
(* Emits components in reverse topological order of the condensation,  *)
(* which is exactly the execution order distribution needs once        *)
(* reversed.                                                           *)
(* ------------------------------------------------------------------ *)

let sccs ~vertices ~successors =
  let index = Array.make vertices (-1) in
  let lowlink = Array.make vertices 0 in
  let on_stack = Array.make vertices false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (successors v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to vertices - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan yields reverse-topological; !components accumulated by
     prepending is therefore topological already. *)
  !components

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)
(* ------------------------------------------------------------------ *)

let distribute (nest : Nest.t) : Program.t =
  let body = Array.of_list nest.Nest.body in
  let m = Array.length body in
  if m <= 1 then [ nest ]
  else begin
    let edges = Analysis.statement_edges nest in
    let succ =
      Array.make m []
    in
    List.iter
      (fun { Analysis.src; dst; _ } ->
        if src <> dst && not (List.mem dst succ.(src)) then
          succ.(src) <- dst :: succ.(src))
      edges;
    let components = sccs ~vertices:m ~successors:(fun v -> succ.(v)) in
    List.map
      (fun comp ->
        let comp = List.sort compare comp in
        { nest with Nest.body = List.map (fun k -> body.(k)) comp })
      components
  end

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

let headers_conformable (a : Nest.t) (b : Nest.t) =
  List.length a.Nest.loops = List.length b.Nest.loops
  && List.for_all2
       (fun (la : Nest.loop) (lb : Nest.loop) ->
         la.Nest.var = lb.Nest.var
         && Expr.equal la.Nest.lo lb.Nest.lo
         && Expr.equal la.Nest.hi lb.Nest.hi
         && Expr.equal la.Nest.step lb.Nest.step
         && la.Nest.kind = lb.Nest.kind)
       a.Nest.loops b.Nest.loops

let fuse (a : Nest.t) (b : Nest.t) =
  if not (headers_conformable a b) then
    Error "loop headers differ (variables, bounds, steps or kinds)"
  else if a.Nest.inits <> [] || b.Nest.inits <> [] then
    Error "nests with initialization statements cannot be fused"
  else if
    Analysis.fusion_preventing a ~first:a.Nest.body ~second:b.Nest.body
  then Error "fusion-preventing dependence (second body reaches a later iteration of the first)"
  else Ok { a with Nest.body = a.Nest.body @ b.Nest.body }

let rec fuse_all (p : Program.t) : Program.t =
  match p with
  | a :: b :: rest -> (
    match fuse a b with
    | Ok merged -> fuse_all (merged :: rest)
    | Error _ -> a :: fuse_all (b :: rest))
  | p -> p

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

let unroll ~factor (nest : Nest.t) : Program.t =
  if factor < 1 then invalid_arg "Statement.unroll: factor must be >= 1";
  if factor = 1 then [ nest ]
  else begin
    let rec split = function
      | [] -> invalid_arg "Statement.unroll: empty nest"
      | [ inner ] -> ([], inner)
      | l :: rest ->
        let outers, inner = split rest in
        (l :: outers, inner)
    in
    let outers, inner = split nest.Nest.loops in
    let s =
      match Expr.to_int inner.Nest.step with
      | Some s when s <> 0 -> s
      | _ -> invalid_arg "Statement.unroll: innermost step must be a nonzero constant"
    in
    let x = inner.Nest.var in
    (* count = (hi - lo + s) div s ; g = full groups = count div factor *)
    let count =
      Expr.div (Expr.add (Expr.sub inner.Nest.hi inner.Nest.lo) (Expr.int s)) (Expr.int s)
    in
    let groups = Expr.div count (Expr.int factor) in
    let sf = s * factor in
    (* main: lo .. lo + s*(factor*(g-1)), step s*factor; body replicated
       with x := x + k*s for k = 0..factor-1 *)
    let main_hi =
      Expr.add inner.Nest.lo
        (Expr.mul (Expr.int s)
           (Expr.mul (Expr.int factor) (Expr.sub groups Expr.one)))
    in
    let shifted k =
      let env = [ (x, Expr.add (Expr.var x) (Expr.int (k * s))) ] in
      List.map (Stmt.subst env) nest.Nest.body
    in
    let main =
      {
        nest with
        Nest.loops =
          outers @ [ { inner with Nest.hi = main_hi; step = Expr.int sf } ];
        body = List.concat (List.init factor shifted);
      }
    in
    (* remainder: lo + s*factor*g .. hi, step s, original body *)
    let rem_lo =
      Expr.add inner.Nest.lo (Expr.mul (Expr.int sf) groups)
    in
    let remainder =
      { nest with Nest.loops = outers @ [ { inner with Nest.lo = rem_lo } ] }
    in
    [ main; remainder ]
  end
