(** Statement-reordering transformations: loop distribution, loop fusion,
    and loop unrolling.

    The paper scopes its framework to transformations that "only change the
    execution order of loop iterations ... without changing the contents of
    the loop body" and names distribution/unrolling as future work
    (Section 6). This module provides them on top of the same substrates:

    - {!distribute} is Allen-Kennedy loop distribution: split the body into
      the strongly connected components of the statement dependence graph
      and emit one nest per component in topological order. Always legal by
      construction.
    - {!fuse} merges two conformable nests when no fusion-preventing
      dependence exists (a statement of the second nest conflicting with a
      statement of the first at a later iteration).
    - {!unroll} unrolls the innermost loop by a constant factor, emitting a
      main nest of full groups plus a remainder nest. Always legal (pure
      replication in order).

    Distribution and fusion are inverses on distribution's output:
    refusing the components in order reproduces the original body. *)

open Itf_ir

val distribute : Nest.t -> Program.t
(** One nest per strongly connected component of the statement dependence
    graph, components in dependence-topological order, statements inside a
    component in original order. A single-statement or dependence-cycle
    body distributes to itself. *)

val fuse : Nest.t -> Nest.t -> (Nest.t, string) result
(** [fuse a b] requires structurally identical loop headers, no init
    statements, and the absence of fusion-preventing dependences;
    otherwise returns a diagnostic [Error]. *)

val fuse_all : Program.t -> Program.t
(** Greedily fuse adjacent nests while legal (a simple maximal-fusion
    pass). *)

val unroll : factor:int -> Nest.t -> Program.t
(** Unroll the innermost loop. Requires [factor >= 1] and a constant-step
    innermost loop; returns [main; remainder] (the remainder is omitted
    when the factor is 1).
    @raise Invalid_argument on a bad factor or non-constant step. *)
