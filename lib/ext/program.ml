open Itf_ir

type t = Nest.t list

let run ?pardo_order env (p : t) =
  List.iter (fun nest -> Itf_exec.Interp.run ?pardo_order env nest) p

let pp ppf (p : t) =
  List.iteri
    (fun k nest ->
      if k > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%a" Nest.pp nest)
    p

let pp ppf p = Format.fprintf ppf "@[<v>%a@]" pp p

let equal (a : t) (b : t) = a = b
