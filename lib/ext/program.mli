(** Sequences of loop nests.

    The kernel framework transforms one perfect nest at a time; the
    statement-level transformations of the paper's Section 6 future work
    (distribution, fusion, unrolling) turn one nest into several or several
    into one, so their natural domain is a {e program}: a list of nests
    executed in order. *)

open Itf_ir

type t = Nest.t list

val run : ?pardo_order:Itf_exec.Interp.pardo_order -> Itf_exec.Env.t -> t -> unit

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
