(** Hash-consing tables and integer-keyed memoization.

    Append-only tables shared across domains and safe for fully
    concurrent use: internally each table is sharded into independently
    locked bucket arrays with a lock-free read fast path, so any thread
    on any domain may intern or probe at any time — there is no
    coordinator-thread restriction. Stats are exact (atomic counters).
    Interning a term returns a canonical physically-shared representative
    plus a dense integer id, making [hash]/[equal] on interned terms O(1)
    integer operations. Ids are stable for the life of the process.

    Ids are NOT a usable total order: they depend on intern order, which
    depends on evaluation order, so any tie-break built on them would make
    search winners scheduling-dependent. Total orders over interned terms
    stay structural (with physical-equality fast paths); only equality and
    hashing key on ids. *)

type stats = {
  name : string;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : unit -> stats list
(** Snapshot of every table created so far, sorted by name. [size] is the
    number of distinct entries (= ids handed out for interning tables),
    [hits]/[misses] are cumulative probe counts, [evictions] the entries
    dropped by {!Memo} size caps (always [0] for interning tables, which
    must keep ids stable and never evict). *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

(** Key-indexed interning: the canonical value is built from the key (and
    its fresh id) on first sight, under the key's shard lock — builders
    must be cheap and must not re-enter the same table (intern children
    first and carry their ids in the key). *)
module Keyed (H : HashedType) : sig
  type 'v t

  val create : ?initial:int -> string -> 'v t
  (** Creates an empty table and registers it with {!stats} under the
      given name. Call at module initialization, not per search. *)

  val intern : 'v t -> H.t -> (int -> 'v) -> 'v * int
  val size : 'v t -> int
end

(** Self-keyed hash-consing: the first representative interned becomes the
    canonical value of its equivalence class. *)
module Make (H : HashedType) : sig
  type table

  val create : ?initial:int -> string -> table
  val intern : table -> H.t -> H.t * int
  val size : table -> int
end

(** Memoization of a pure function by key. The compute callback runs
    outside any lock (objective evaluations are long); racing computations
    of one key are benign because the function is deterministic.

    Memo tables are size-capped: [max_size] (default
    {!Memo.default_max_size}) is enforced per shard, and when an insert
    would grow a shard past its [max_size / 16] slice that shard is
    flushed whole, the evictions counted in {!stats}. Flushing a memo of
    a pure function never changes results — later probes recompute — so
    capped and uncapped runs are byte-identical apart from timing. *)
module Memo (H : HashedType) : sig
  type 'v t

  val default_max_size : int
  (** [2^20] entries — far above any single search, small enough to keep
      a long-lived serve process flat. *)

  val create : ?initial:int -> ?max_size:int -> string -> 'v t
  val find_or_add : 'v t -> H.t -> (unit -> 'v) -> 'v
  val size : 'v t -> int
end

(** Pre-packaged key shapes for the common cases. *)

module Int_key : HashedType with type t = int
module Ints_key : HashedType with type t = int list
