type t = { rows : int; cols : int; data : int array; mutable id : int }
(* Row-major storage; [rows]/[cols]/[data] are never mutated after
   construction. [id] is -1 until {!intern} assigns the matrix its dense
   hash-consing id; a non-negative id marks the canonical representative
   (or a twin that learned its class's id). Construction does NOT intern:
   determinant minors and intermediate products are transient and must not
   grow the append-only table. *)

type vec = int array

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Intmat.make: non-positive dims";
  let data = Array.make (rows * cols) 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data; id = -1 }

let of_rows rws =
  match rws with
  | [] -> invalid_arg "Intmat.of_rows: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 || List.exists (fun r -> List.length r <> cols) rws then
      invalid_arg "Intmat.of_rows: ragged or empty rows";
    let arr = Array.of_list (List.map Array.of_list rws) in
    make (Array.length arr) cols (fun i j -> arr.(i).(j))

let of_array a =
  of_rows (Array.to_list (Array.map Array.to_list a))

let identity n = make n n (fun i j -> if i = j then 1 else 0)
let zero rows cols = make rows cols (fun _ _ -> 0)

let rows t = t.rows
let cols t = t.cols
let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Intmat.get: out of bounds";
  t.data.((i * t.cols) + j)

let row t i = Array.init t.cols (fun j -> get t i j)
let col t j = Array.init t.rows (fun i -> get t i j)

let to_rows t =
  List.init t.rows (fun i -> List.init t.cols (fun j -> get t i j))

let equal a b =
  a == b
  || (a.id >= 0 && b.id >= 0 && a.id = b.id)
  || ((a.id < 0 || b.id < 0)
     && a.rows = b.rows && a.cols = b.cols && a.data = b.data)

(* Explicit total order and hash (dimensions first, then row-major
   entries); [t] is abstract, so clients cannot fall back on the
   polymorphic versions. The order is structural, never id-based: ids
   depend on intern order, and tie-breaks built on them would make search
   winners scheduling-dependent. *)
let compare a b =
  if a == b then 0
  else
  let c = Int.compare a.rows b.rows in
  if c <> 0 then c
  else
    let c = Int.compare a.cols b.cols in
    if c <> 0 then c
    else
      let n = Array.length a.data in
      let rec go k =
        if k >= n then 0
        else
          let c = Int.compare a.data.(k) b.data.(k) in
          if c <> 0 then c else go (k + 1)
      in
      go 0

let hash t =
  if t.id >= 0 then t.id
  else
    Array.fold_left
      (fun h x -> (h * 31) + x)
      ((t.rows * 31) + t.cols)
      t.data

(* Hash-consing. The table keys on structure (dimensions + entries), so an
   uninterned twin of a canonical matrix finds its class; the structural
   probe hash must therefore ignore [id]. *)
module HC = Hashcons.Make (struct
  type nonrec t = t

  let equal a b =
    a == b || (a.rows = b.rows && a.cols = b.cols && a.data = b.data)

  let hash t =
    Array.fold_left
      (fun h x -> (h * 31) + x)
      ((t.rows * 31) + t.cols)
      t.data
end)

let table = HC.create "mat.intmat"

let intern_id t =
  if t.id >= 0 then (t, t.id)
  else begin
    let c, id = HC.intern table t in
    (* Publish the id on the canonical representative. Racing writers all
       write the same value, so the unsynchronized store is benign. *)
    if c.id < 0 then c.id <- id;
    (c, id)
  end

let intern t = fst (intern_id t)
let id t = snd (intern_id t)

let is_identity t =
  t.rows = t.cols
  &&
  let n = t.cols in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         if t.data.((i * n) + j) <> (if i = j then 1 else 0) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let map2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch");
  make a.rows a.cols (fun i j -> f (get a i j) (get b i j))

let add a b = map2 "Intmat.add" ( + ) a b
let sub a b = map2 "Intmat.sub" ( - ) a b

let mul a b =
  if a.cols <> b.rows then invalid_arg "Intmat.mul: dimension mismatch";
  make a.rows b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := !acc + (get a i k * get b k j)
      done;
      !acc)

let scale c a = make a.rows a.cols (fun i j -> c * get a i j)

let transpose a = make a.cols a.rows (fun i j -> get a j i)

let apply m v =
  if Array.length v <> m.cols then invalid_arg "Intmat.apply: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0 in
      for k = 0 to m.cols - 1 do
        acc := !acc + (get m i k * v.(k))
      done;
      !acc)

(* Fraction-free Bareiss elimination: every division below is exact. *)
let det t =
  if t.rows <> t.cols then invalid_arg "Intmat.det: not square";
  let n = t.rows in
  let a = Array.init n (fun i -> row t i) in
  let sign = ref 1 in
  let prev = ref 1 in
  let result = ref None in
  (try
     for k = 0 to n - 2 do
       if a.(k).(k) = 0 then begin
         (* Find a pivot row below and swap. *)
         let p = ref (-1) in
         for i = k + 1 to n - 1 do
           if !p < 0 && a.(i).(k) <> 0 then p := i
         done;
         if !p < 0 then begin
           result := Some 0;
           raise Exit
         end;
         let tmp = a.(k) in
         a.(k) <- a.(!p);
         a.(!p) <- tmp;
         sign := - !sign
       end;
       for i = k + 1 to n - 1 do
         for j = k + 1 to n - 1 do
           a.(i).(j) <- ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
         done;
         a.(i).(k) <- 0
       done;
       prev := a.(k).(k)
     done
   with Exit -> ());
  match !result with
  | Some d -> d
  | None -> !sign * a.(n - 1).(n - 1)

let is_unimodular t =
  t.rows = t.cols && (let d = det t in d = 1 || d = -1)

(* Minor of [t] deleting row [i] and column [j]. *)
let minor t i j =
  make (t.rows - 1) (t.cols - 1) (fun r c ->
      let r = if r >= i then r + 1 else r in
      let c = if c >= j then c + 1 else c in
      get t r c)

let inverse_unimodular t =
  if not (is_unimodular t) then
    invalid_arg "Intmat.inverse_unimodular: matrix is not unimodular";
  let n = t.rows in
  if n = 1 then make 1 1 (fun _ _ -> get t 0 0 (* +-1 is its own inverse *))
  else
    let d = det t in
    (* inverse = adjugate / det; adjugate(i,j) = cofactor(j,i). *)
    make n n (fun i j ->
        let cof = det (minor t j i) in
        let s = if (i + j) mod 2 = 0 then 1 else -1 in
        s * cof / d)

let interchange n i j =
  if i < 0 || j < 0 || i >= n || j >= n then invalid_arg "Intmat.interchange";
  make n n (fun r c ->
      if r = i then (if c = j then 1 else 0)
      else if r = j then (if c = i then 1 else 0)
      else if r = c then 1
      else 0)

let reversal n i =
  if i < 0 || i >= n then invalid_arg "Intmat.reversal";
  make n n (fun r c -> if r <> c then 0 else if r = i then -1 else 1)

let skew n i j f =
  if i < 0 || j < 0 || i >= n || j >= n || i = j then invalid_arg "Intmat.skew";
  make n n (fun r c ->
      if r = c then 1 else if r = j && c = i then f else 0)

let permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then invalid_arg "Intmat.permutation";
      seen.(p) <- true)
    perm;
  (* Row perm.(k) selects old component k: y_{perm.(k)} = x_k. *)
  make n n (fun r c -> if perm.(c) = r then 1 else 0)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%d" (get t i j)
    done;
    Format.fprintf ppf "]";
    if i < t.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
