(** Exact rational arithmetic on machine integers.

    Used by Fourier-Motzkin elimination and by the Banerjee bounds in the
    dependence analyzer, where intermediate values stay small enough for
    63-bit integers but must be exact. All values are kept in canonical form:
    positive denominator, numerator and denominator coprime. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val floor : t -> int
(** Largest integer [<=] the value. *)

val ceil : t -> int
(** Smallest integer [>=] the value. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
