(* Generic hash-consing and integer-keyed memoization.

   Every table is append-only and guarded by one mutex, shared across
   domains. All search-engine interning happens on the coordinator thread
   (expand/merge are sequential), so a shared table beats per-domain
   tables + id translation: the lock is uncontended there, and worker
   domains only touch the tables through the objective/tier-0 memos,
   whose critical sections are single probes. Dense ids are handed out in
   interning order; they are stable for the life of the process and valid
   as hash keys and equality witnesses, but NOT as an ordering — intern
   order depends on evaluation order, so total orders stay structural
   (see DESIGN.md section 10). *)

type stats = {
  name : string;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

let registry : (unit -> stats) list ref = ref []
let registry_mutex = Mutex.create ()

let register f =
  Mutex.lock registry_mutex;
  registry := f :: !registry;
  Mutex.unlock registry_mutex

let stats () =
  Mutex.lock registry_mutex;
  let fs = !registry in
  Mutex.unlock registry_mutex;
  List.sort
    (fun a b -> String.compare a.name b.name)
    (List.rev_map (fun f -> f ()) fs)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

(* Key -> (value, id) tables where the canonical value is built from the
   key on first sight. The builder runs under the table lock (it must be
   cheap and must not re-enter the same table) so id assignment and
   publication are atomic: every racer sees one canonical value per key. *)
module Keyed (H : HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type 'v t = {
    tbl : ('v * int) Tbl.t;
    mutex : Mutex.t;
    mutable next : int;
    mutable hits : int;
    mutable misses : int;
    name : string;
  }

  let create ?(initial = 256) name =
    let t =
      {
        tbl = Tbl.create initial;
        mutex = Mutex.create ();
        next = 0;
        hits = 0;
        misses = 0;
        name;
      }
    in
    register (fun () ->
        Mutex.lock t.mutex;
        let s =
          {
            name = t.name;
            size = t.next;
            hits = t.hits;
            misses = t.misses;
            evictions = 0;
          }
        in
        Mutex.unlock t.mutex;
        s);
    t

  let intern t key build =
    Mutex.lock t.mutex;
    match Tbl.find_opt t.tbl key with
    | Some ((_, _) as found) ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      found
    | None ->
      let id = t.next in
      t.next <- id + 1;
      t.misses <- t.misses + 1;
      let entry =
        match build id with
        | v -> (v, id)
        | exception e ->
          (* Keep the table consistent (the id is burned, nothing maps
             to it) and re-raise. *)
          Mutex.unlock t.mutex;
          raise e
      in
      Tbl.add t.tbl key entry;
      Mutex.unlock t.mutex;
      entry

  let size t =
    Mutex.lock t.mutex;
    let n = t.next in
    Mutex.unlock t.mutex;
    n
end

(* Self-keyed hash-consing: the key IS the value; the first representative
   interned becomes canonical for its equivalence class. *)
module Make (H : HashedType) = struct
  module K = Keyed (H)

  type table = H.t K.t

  let create ?initial name = K.create ?initial name
  let intern t v = K.intern t v (fun _ -> v)
  let size = K.size
end

(* Key -> value memoization of a pure function. Unlike [Keyed], the
   compute runs OUTSIDE the lock: objective evaluations take milliseconds
   and must not serialize worker domains. Racing computations of the same
   key are benign — the function is pure and deterministic, so both
   produce the same value and either store wins.

   Unlike the interning tables — whose ids must stay stable for the life
   of the process, so they can never evict — a memo holds only derived
   values of a pure function and may drop entries freely. [max_size]
   bounds the table: when an insert would exceed it, the whole table is
   flushed (a generational clear: O(1) amortized, no LRU bookkeeping on
   the hot path) and every later probe just recomputes. Under a
   long-lived server this caps memory; in one-shot runs the cap is never
   reached and behavior is byte-identical. *)
module Memo (H : HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type 'v t = {
    tbl : 'v Tbl.t;
    mutex : Mutex.t;
    max_size : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    name : string;
  }

  let default_max_size = 1 lsl 20

  let create ?(initial = 256) ?(max_size = default_max_size) name =
    let t =
      {
        tbl = Tbl.create initial;
        mutex = Mutex.create ();
        max_size = max 1 max_size;
        hits = 0;
        misses = 0;
        evictions = 0;
        name;
      }
    in
    register (fun () ->
        Mutex.lock t.mutex;
        let s =
          {
            name = t.name;
            size = Tbl.length t.tbl;
            hits = t.hits;
            misses = t.misses;
            evictions = t.evictions;
          }
        in
        Mutex.unlock t.mutex;
        s);
    t

  let find_or_add t key f =
    Mutex.lock t.mutex;
    match Tbl.find_opt t.tbl key with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.mutex;
      let v = f () in
      Mutex.lock t.mutex;
      if not (Tbl.mem t.tbl key) then begin
        if Tbl.length t.tbl >= t.max_size then begin
          t.evictions <- t.evictions + Tbl.length t.tbl;
          Tbl.reset t.tbl
        end;
        Tbl.add t.tbl key v
      end;
      Mutex.unlock t.mutex;
      v

  let size t =
    Mutex.lock t.mutex;
    let n = Tbl.length t.tbl in
    Mutex.unlock t.mutex;
    n
end

(* Common key shapes. *)

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash x = x land max_int
end

module Ints_key = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash l = List.fold_left (fun h x -> (h * 31) + x) (List.length l) l
end
