(* Generic hash-consing and integer-keyed memoization.

   Every table is safe for fully concurrent use: any thread on any domain
   may intern or probe at any time. Tables are sharded — [nshards]
   independent bucket arrays, each guarded by its own mutex — so writers
   on distinct shards never contend, and reads take no lock at all: a
   probe walks an immutable bucket list published through an [Atomic]
   array cell, and only a miss falls back to the shard lock (where it
   re-probes before inserting, so every racer still sees exactly one
   canonical value per key). This is what lets N serve workers intern
   candidate sequences in parallel; the old single-mutex design assumed
   all interning happened on one coordinator thread.

   Stats are exact: ids and hit/miss/eviction counts come from atomic
   counters, never from per-shard fields summed racily. Dense ids are
   handed out in interning order; they are stable for the life of the
   process and valid as hash keys and equality witnesses, but NOT as an
   ordering — intern order depends on scheduling, so total orders stay
   structural (see DESIGN.md sections 10 and 13). *)

type stats = {
  name : string;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

let registry : (unit -> stats) list ref = ref []
let registry_mutex = Mutex.create ()

let register f =
  Mutex.lock registry_mutex;
  registry := f :: !registry;
  Mutex.unlock registry_mutex

let stats () =
  Mutex.lock registry_mutex;
  let fs = !registry in
  Mutex.unlock registry_mutex;
  List.sort
    (fun a b -> String.compare a.name b.name)
    (List.rev_map (fun f -> f ()) fs)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

(* Shard geometry, shared by [Keyed] and [Memo]. The shard index comes
   from the low bits of the spread hash, the in-shard bucket index from
   the remaining bits, so the two are independent. *)
let shard_bits = 4
let nshards = 1 lsl shard_bits
let shard_mask = nshards - 1

(* [Ints_key]-style fold hashes cluster in the low bits; one xor-shift
   spreads them so both the shard choice and the bucket choice see
   well-mixed bits. *)
let spread h =
  let h = h land max_int in
  h lxor (h lsr 17)

(* Key -> (value, id) tables where the canonical value is built from the
   key on first sight. The builder runs under the shard lock (it must be
   cheap and must not re-enter the same table — interning children first
   and passing their ids in the key is the supported recursion scheme)
   so id assignment and publication are atomic: every racer sees one
   canonical value per key.

   Bucket lists are immutable; insertion replaces the [Atomic] array
   cell's head under the shard lock and then re-publishes the array with
   an [Atomic.set], so lock-free readers that observe the new list also
   observe the fully built entry. A lock-free probe that misses is never
   trusted: it re-probes under the shard lock before interning, so the
   only cost of a stale read is one mutex acquisition. *)
module Keyed (H : HashedType) = struct
  type 'v shard = {
    mutex : Mutex.t;
    buckets : (H.t * ('v * int)) list array Atomic.t;
    mutable count : int;  (* entries in this shard; shard-lock protected *)
  }

  type 'v t = {
    shards : 'v shard array;
    next : int Atomic.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    name : string;
  }

  let create ?(initial = 256) name =
    let per_shard = max 8 (initial / nshards) in
    let t =
      {
        shards =
          Array.init nshards (fun _ ->
              {
                mutex = Mutex.create ();
                buckets = Atomic.make (Array.make per_shard []);
                count = 0;
              });
        next = Atomic.make 0;
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        name;
      }
    in
    register (fun () ->
        {
          name = t.name;
          size = Atomic.get t.next;
          hits = Atomic.get t.hits;
          misses = Atomic.get t.misses;
          evictions = 0;
        });
    t

  let rec find_bucket key = function
    | [] -> None
    | (k, entry) :: rest ->
      if H.equal k key then Some entry else find_bucket key rest

  let probe shard h key =
    let arr = Atomic.get shard.buckets in
    find_bucket key arr.((h lsr shard_bits) mod Array.length arr)

  (* Grow under the shard lock: rehash into a fresh array, publish it
     atomically. Readers see the old or the new array, both complete. *)
  let maybe_grow shard h_of_key =
    let arr = Atomic.get shard.buckets in
    let n = Array.length arr in
    if shard.count >= 2 * n then begin
      let bigger = Array.make (2 * n) [] in
      Array.iter
        (List.iter (fun ((k, _) as kv) ->
             let i = (h_of_key k lsr shard_bits) mod (2 * n) in
             bigger.(i) <- kv :: bigger.(i)))
        arr;
      Atomic.set shard.buckets bigger
    end

  let intern t key build =
    let h = spread (H.hash key) in
    let shard = t.shards.(h land shard_mask) in
    match probe shard h key with
    | Some entry ->
      Atomic.incr t.hits;
      entry
    | None -> (
      Mutex.lock shard.mutex;
      (* Re-probe: the lock-free read may have raced an insert. *)
      match probe shard h key with
      | Some entry ->
        Mutex.unlock shard.mutex;
        Atomic.incr t.hits;
        entry
      | None ->
        let id = Atomic.fetch_and_add t.next 1 in
        Atomic.incr t.misses;
        let entry =
          match build id with
          | v -> (v, id)
          | exception e ->
            (* Keep the table consistent (the id is burned, nothing maps
               to it) and re-raise. *)
            Mutex.unlock shard.mutex;
            raise e
        in
        maybe_grow shard (fun k -> spread (H.hash k));
        let arr = Atomic.get shard.buckets in
        let i = (h lsr shard_bits) mod Array.length arr in
        arr.(i) <- (key, entry) :: arr.(i);
        shard.count <- shard.count + 1;
        (* Republish so the plain bucket write above is ordered before
           any later lock-free read of the array. *)
        Atomic.set shard.buckets arr;
        Mutex.unlock shard.mutex;
        entry)

  let size t = Atomic.get t.next
end

(* Self-keyed hash-consing: the key IS the value; the first representative
   interned becomes canonical for its equivalence class. *)
module Make (H : HashedType) = struct
  module K = Keyed (H)

  type table = H.t K.t

  let create ?initial name = K.create ?initial name
  let intern t v = K.intern t v (fun _ -> v)
  let size = K.size
end

(* Key -> value memoization of a pure function. Unlike [Keyed], the
   compute runs OUTSIDE any lock: objective evaluations take milliseconds
   and must not serialize worker domains. Racing computations of the same
   key are benign — the function is pure and deterministic, so both
   produce the same value and either store wins.

   Unlike the interning tables — whose ids must stay stable for the life
   of the process, so they can never evict — a memo holds only derived
   values of a pure function and may drop entries freely. [max_size]
   bounds the table, enforced per shard at [max_size / nshards]: when an
   insert would push a shard past its slice, that shard is flushed whole
   (a generational clear: O(1) amortized, no LRU bookkeeping on the hot
   path) and every later probe of its keys just recomputes. Under a
   long-lived server this caps memory; in one-shot runs the cap is never
   reached and behavior is byte-identical. *)
module Memo (H : HashedType) = struct
  type 'v shard = {
    mutex : Mutex.t;
    buckets : (H.t * 'v) list array Atomic.t;
    mutable count : int;  (* entries in this shard; shard-lock protected *)
  }

  type 'v t = {
    shards : 'v shard array;
    max_per_shard : int;
    hits : int Atomic.t;
    misses : int Atomic.t;
    evictions : int Atomic.t;
    name : string;
  }

  let default_max_size = 1 lsl 20

  let create ?(initial = 256) ?(max_size = default_max_size) name =
    let per_shard = max 8 (initial / nshards) in
    let t =
      {
        shards =
          Array.init nshards (fun _ ->
              {
                mutex = Mutex.create ();
                buckets = Atomic.make (Array.make per_shard []);
                count = 0;
              });
        max_per_shard = max 1 (max 1 max_size / nshards);
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        evictions = Atomic.make 0;
        name;
      }
    in
    register (fun () ->
        {
          name = t.name;
          size = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards;
          hits = Atomic.get t.hits;
          misses = Atomic.get t.misses;
          evictions = Atomic.get t.evictions;
        });
    t

  let rec find_bucket key = function
    | [] -> None
    | (k, v) :: rest -> if H.equal k key then Some v else find_bucket key rest

  let probe shard h key =
    let arr = Atomic.get shard.buckets in
    find_bucket key arr.((h lsr shard_bits) mod Array.length arr)

  let maybe_grow shard limit =
    let arr = Atomic.get shard.buckets in
    let n = Array.length arr in
    if shard.count >= 2 * n && n < limit then begin
      let bigger = Array.make (2 * n) [] in
      Array.iter
        (List.iter (fun ((k, _) as kv) ->
             let i = (spread (H.hash k) lsr shard_bits) mod (2 * n) in
             bigger.(i) <- kv :: bigger.(i)))
        arr;
      Atomic.set shard.buckets bigger
    end

  let find_or_add t key f =
    let h = spread (H.hash key) in
    let shard = t.shards.(h land shard_mask) in
    match probe shard h key with
    | Some v ->
      Atomic.incr t.hits;
      v
    | None ->
      Atomic.incr t.misses;
      let v = f () in
      Mutex.lock shard.mutex;
      (if Option.is_none (probe shard h key) then begin
         if shard.count >= t.max_per_shard then begin
           (* Generational flush of this shard alone: its keys recompute,
              the other shards keep their entries. *)
           ignore (Atomic.fetch_and_add t.evictions shard.count);
           shard.count <- 0;
           Atomic.set shard.buckets (Array.make 8 [])
         end;
         maybe_grow shard t.max_per_shard;
         let arr = Atomic.get shard.buckets in
         let i = (h lsr shard_bits) mod Array.length arr in
         arr.(i) <- (key, v) :: arr.(i);
         shard.count <- shard.count + 1;
         Atomic.set shard.buckets arr
       end);
      Mutex.unlock shard.mutex;
      v

  let size t = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards
end

(* Common key shapes. *)

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash x = x land max_int
end

module Ints_key = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash l = List.fold_left (fun h x -> (h * 31) + x) (List.length l) l
end
