(** Dense integer matrices and vectors.

    The framework uses square integer matrices for the [Unimodular] template
    (paper Table 1) and integer vectors for dependence distances. Determinants
    are computed with the fraction-free Bareiss algorithm so that all
    intermediate values remain integers, and inverses of unimodular matrices
    are computed exactly via the adjugate. *)

type t
(** An immutable [rows x cols] integer matrix. *)

type vec = int array

(** {1 Construction} *)

val make : int -> int -> (int -> int -> int) -> t
(** [make rows cols f] builds the matrix with entry [f i j] at row [i],
    column [j] (0-based). @raise Invalid_argument on non-positive dims. *)

val of_rows : int list list -> t
(** Build from row-major lists. @raise Invalid_argument on ragged input. *)

val of_array : int array array -> t

val identity : int -> t

val zero : int -> int -> t

(** {1 Accessors} *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val row : t -> int -> vec
val col : t -> int -> vec
val to_rows : t -> int list list

(** {1 Algebra} *)

val equal : t -> t -> bool
(** Structural equality, O(1) when both sides are interned (id compare)
    or physically equal. *)

val compare : t -> t -> int
(** Total order: dimensions first, then row-major entries. Deliberately
    structural even for interned matrices — ids depend on intern order and
    are not a deterministic order. *)

val hash : t -> int
(** Hash compatible with [equal]: the intern id when interned (O(1)),
    the structural fold otherwise. *)

val is_identity : t -> bool
(** [is_identity t] = [equal t (identity (rows t))] for square [t], false
    otherwise — without allocating the identity. *)

(** {1 Hash-consing} *)

val intern : t -> t
(** Canonical physically-shared representative of [t]'s structural
    equivalence class, registered in the global append-only table (see
    {!Hashcons}). Idempotent; [intern a == intern b] iff [equal a b]. *)

val id : t -> int
(** Dense intern id of [t]'s class (interning it first if needed). Equal
    ids = equal matrices; ids are stable for the process lifetime but are
    NOT ordered meaningfully. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t
val transpose : t -> t
val apply : t -> vec -> vec
(** [apply m v] is the matrix-vector product [m * v]. *)

val det : t -> int
(** Determinant via fraction-free Bareiss elimination.
    @raise Invalid_argument if the matrix is not square. *)

val is_unimodular : t -> bool
(** True iff square and determinant is [+1] or [-1] (paper footnote 1). *)

val inverse_unimodular : t -> t
(** Exact integer inverse of a unimodular matrix (adjugate divided by the
    determinant, which is [+-1]).
    @raise Invalid_argument if the matrix is not unimodular. *)

(** {1 Elementary unimodular generators (paper Section 1)} *)

val interchange : int -> int -> int -> t
(** [interchange n i j] swaps loops [i] and [j] (0-based) in an [n]-nest. *)

val reversal : int -> int -> t
(** [reversal n i] negates loop [i]. *)

val skew : int -> int -> int -> int -> t
(** [skew n i j f] adds [f] times loop [i] to loop [j] (requires [i <> j]):
    the classic skewing matrix. *)

val permutation : int array -> t
(** [permutation perm] moves loop [k] to position [perm.(k)];
    [perm] must be a permutation of [0..n-1]. *)

val pp : Format.formatter -> t -> unit
