type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd a b = gcd (Stdlib.abs a) (Stdlib.abs b)

let make num den =
  if den = 0 then raise Division_by_zero
  else begin
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    if num = 0 then { num = 0; den = 1 }
    else
      let g = gcd num den in
      { num = num / g; den = den / g }
  end

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = if b.num = 0 then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }
let inv a = div one a

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_integer a = a.den = 1

let to_int_exn a =
  if a.den = 1 then a.num else invalid_arg "Ratio.to_int_exn: not an integer"

(* Floor division on integers: rounds toward negative infinity. *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor a = fdiv a.num a.den
let ceil a = -fdiv (-a.num) a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
